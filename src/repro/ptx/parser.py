"""Recursive-descent parser producing :class:`repro.ptx.ast.PTXModule`.

The grammar covers the PTX 6.x subset emitted by the kernel generators in
:mod:`repro.cudnn.kernels` plus everything the paper's bug reports touch
(``brev``, ``bfe``, typed ``rem``, textures, vector loads, ``bar.sync``).

One deliberate compatibility quirk is preserved: GPGPU-Sim could not parse
global arrays initialised with curly braces (the reason TensorFlow support
was left as future work in the paper).  The parser reproduces that
behaviour by default and implements the initialiser as the opt-in
``allow_brace_init=True`` extension.
"""

from __future__ import annotations

from repro.errors import PTXLabelError, PTXSyntaxError
from repro.ptx import ast
from repro.ptx.dtypes import DType, dtype_from_name, is_dtype_name
from repro.ptx.lexer import EOF, FLOAT, INT, PUNCT, WORD, Token, tokenize
from repro.ptx.values import MASK64, f64_to_bits, write_typed

_SPACES = frozenset(["global", "shared", "local", "param", "const", "generic"])
_CMP_OPS = frozenset([
    "eq", "ne", "lt", "le", "gt", "ge", "lo", "ls", "hi", "hs",
    "equ", "neu", "ltu", "leu", "gtu", "geu", "num", "nan",
])
_CMP_OPCODES = frozenset(["setp", "set"])


class Parser:
    """Token-stream parser for one PTX translation unit."""

    def __init__(self, text: str, file_id: str = "", *,
                 allow_brace_init: bool = False) -> None:
        self._tokens = tokenize(text)
        self._pos = 0
        self._module = ast.PTXModule(file_id=file_id)
        self._allow_brace_init = allow_brace_init

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def _peek(self, ahead: int = 0) -> Token:
        index = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != EOF:
            self._pos += 1
        return token

    def _expect(self, kind: str, text: str | None = None) -> Token:
        token = self._next()
        if token.kind != kind or (text is not None and token.text != text):
            want = text or kind
            raise PTXSyntaxError(
                f"expected {want!r}, found {token.text!r}", token.line)
        return token

    def _accept(self, kind: str, text: str | None = None) -> Token | None:
        token = self._peek()
        if token.kind == kind and (text is None or token.text == text):
            return self._next()
        return None

    def _skip_statement(self) -> None:
        while self._peek().kind != EOF:
            if self._accept(PUNCT, ";"):
                return
            self._next()

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def parse(self) -> ast.PTXModule:
        while True:
            token = self._peek()
            if token.kind == EOF:
                break
            if token.kind != WORD:
                raise PTXSyntaxError(
                    f"unexpected token {token.text!r} at module scope",
                    token.line)
            word = token.text
            if word == ".version":
                self._next()
                self._module.version = self._next().text
                self._accept(PUNCT, ";")
            elif word == ".target":
                self._next()
                self._module.target = self._next().text
                while self._accept(PUNCT, ","):
                    self._next()
                self._accept(PUNCT, ";")
            elif word == ".address_size":
                self._next()
                self._module.address_size = int(self._next().value)
                self._accept(PUNCT, ";")
            elif word in (".file", ".loc", ".pragma"):
                self._skip_statement()
            else:
                self._parse_toplevel_decl()
        return self._module

    def _parse_toplevel_decl(self) -> None:
        qualifiers: list[str] = []
        while self._peek().kind == WORD and self._peek().text in (
                ".visible", ".extern", ".weak", ".common"):
            qualifiers.append(self._next().text)
        token = self._peek()
        if token.text == ".entry":
            self._next()
            self._parse_entry()
        elif token.text in (".global", ".const"):
            space = token.text.lstrip(".")
            self._next()
            decl = self._parse_var_decl(space, allow_init=True)
            target = (self._module.global_vars if space == "global"
                      else self._module.const_vars)
            target[decl.name] = decl
            self._expect(PUNCT, ";")
        elif token.text == ".func":
            raise PTXSyntaxError(
                "device functions (.func) are not supported; inline them",
                token.line)
        else:
            raise PTXSyntaxError(
                f"unexpected directive {token.text!r}", token.line)

    # ------------------------------------------------------------------
    # Kernel entries
    # ------------------------------------------------------------------
    def _parse_entry(self) -> None:
        name = self._expect(WORD).text
        kernel = ast.Kernel(name=name, module=self._module)
        if self._accept(PUNCT, "("):
            offset = 0
            while not self._accept(PUNCT, ")"):
                param = self._parse_param(offset)
                offset = param.offset + param.size
                kernel.params.append(param)
                self._accept(PUNCT, ",")
        # Skip performance-tuning directives before the body.
        while self._peek().kind == WORD and self._peek().text.startswith("."):
            self._skip_directive_before_body()
        self._expect(PUNCT, "{")
        self._parse_body(kernel)
        self._module.kernels[name] = kernel

    def _skip_directive_before_body(self) -> None:
        self._next()  # directive word, e.g. .maxntid
        while self._peek().kind in (INT, WORD) or self._peek().text == ",":
            if self._peek().text == "{":
                break
            self._next()

    def _parse_param(self, offset: int) -> ast.ParamDecl:
        self._expect(WORD, ".param")
        align = 0
        if self._accept(WORD, ".align"):
            align = int(self._expect(INT).value)
        dtype = self._parse_dtype()
        name = self._expect(WORD).text
        array_len = 0
        if self._accept(PUNCT, "["):
            array_len = int(self._expect(INT).value)
            self._expect(PUNCT, "]")
        alignment = align or dtype.bytes
        offset = (offset + alignment - 1) // alignment * alignment
        return ast.ParamDecl(name=name, dtype=dtype, offset=offset,
                             array_len=array_len * dtype.bytes)

    def _parse_dtype(self) -> DType:
        token = self._expect(WORD)
        name = token.text.lstrip(".")
        if not is_dtype_name(name):
            raise PTXSyntaxError(f"expected dtype, found {token.text!r}",
                                 token.line)
        return dtype_from_name(name)

    # ------------------------------------------------------------------
    # Kernel bodies
    # ------------------------------------------------------------------
    def _parse_body(self, kernel: ast.Kernel) -> None:
        while True:
            token = self._peek()
            if token.kind == EOF:
                raise PTXSyntaxError("unterminated kernel body", token.line)
            if self._accept(PUNCT, "}"):
                break
            if token.kind == WORD and token.text == ".reg":
                self._parse_reg_decl(kernel)
            elif token.kind == WORD and token.text in (".shared", ".local"):
                space = token.text.lstrip(".")
                self._next()
                decl = self._parse_var_decl(space, allow_init=False)
                if space == "shared":
                    kernel.shared_vars.append(decl)
                else:
                    kernel.local_vars.append(decl)
                self._expect(PUNCT, ";")
            elif token.kind == WORD and token.text in (".loc", ".pragma"):
                self._skip_statement()
            elif (token.kind == WORD
                  and self._peek(1).kind == PUNCT
                  and self._peek(1).text == ":"):
                label = self._next().text
                self._expect(PUNCT, ":")
                if label in kernel.labels:
                    raise PTXLabelError(f"duplicate label {label!r}",
                                        token.line)
                kernel.labels[label] = len(kernel.body)
            else:
                inst = self._parse_instruction(len(kernel.body))
                kernel.body.append(inst)
        # A branch to a label the body never defines would otherwise
        # surface as a KeyError (or a "bra without target" fault) the
        # first time a warp reaches it.  Bare-word targets lex as SYM;
        # promote the ones that resolve, reject the rest here.
        for inst in kernel.body:
            for operand in inst.operands:
                if (operand.kind == ast.SYM and inst.opcode == "bra"
                        and operand.name in kernel.labels):
                    operand.kind = ast.LABEL
                if (operand.kind == ast.LABEL
                        and operand.name not in kernel.labels):
                    raise PTXLabelError(
                        f"branch to undefined label {operand.name!r} "
                        f"in kernel {kernel.name!r}", inst.line)
                if (operand.kind == ast.SYM and inst.opcode == "bra"):
                    raise PTXLabelError(
                        f"branch to undefined label {operand.name!r} "
                        f"in kernel {kernel.name!r}", inst.line)

    def _parse_reg_decl(self, kernel: ast.Kernel) -> None:
        self._expect(WORD, ".reg")
        dtype = self._parse_dtype()
        while True:
            name = self._expect(WORD).text
            if self._accept(PUNCT, "<"):
                count = int(self._expect(INT).value)
                self._expect(PUNCT, ">")
                for i in range(count):
                    kernel.reg_decls[f"{name}{i}"] = dtype
            else:
                kernel.reg_decls[name] = dtype
            if not self._accept(PUNCT, ","):
                break
        self._expect(PUNCT, ";")

    def _parse_var_decl(self, space: str, *, allow_init: bool) -> ast.VarDecl:
        align = 0
        if self._accept(WORD, ".align"):
            align = int(self._expect(INT).value)
        dtype = self._parse_dtype()
        name = self._expect(WORD).text
        array_len = 1
        if self._accept(PUNCT, "["):
            array_len = int(self._expect(INT).value)
            self._expect(PUNCT, "]")
        init: bytes | None = None
        if self._accept(PUNCT, "="):
            init = self._parse_initializer(dtype, array_len, allow_init)
        return ast.VarDecl(name=name, space=space, dtype=dtype,
                           array_len=array_len, align=align, init=init)

    def _parse_initializer(self, dtype: DType, array_len: int,
                           allow_init: bool) -> bytes:
        token = self._peek()
        if token.text == "{":
            if not self._allow_brace_init:
                # Reproduces the GPGPU-Sim limitation the paper hit with
                # TensorFlow's PTX; enable allow_brace_init to lift it.
                raise PTXSyntaxError(
                    "curly-brace array initialisers are not supported "
                    "(pass allow_brace_init=True to enable)", token.line)
            self._next()
            values: list[int | float] = []
            while not self._accept(PUNCT, "}"):
                values.append(self._parse_scalar_literal())
                self._accept(PUNCT, ",")
        else:
            values = [self._parse_scalar_literal()]
        blob = bytearray()
        for value in values:
            blob += write_typed(value, dtype).to_bytes(dtype.bytes, "little")
        blob += bytes(max(0, array_len * dtype.bytes - len(blob)))
        return bytes(blob)

    def _parse_scalar_literal(self) -> int | float:
        negative = bool(self._accept(PUNCT, "-"))
        token = self._next()
        if token.kind not in (INT, FLOAT):
            raise PTXSyntaxError(
                f"expected literal, found {token.text!r}", token.line)
        value = token.value
        return -value if negative else value

    # ------------------------------------------------------------------
    # Instructions
    # ------------------------------------------------------------------
    def _parse_instruction(self, index: int) -> ast.Instruction:
        pred = None
        pred_negated = False
        if self._accept(PUNCT, "@"):
            if self._accept(PUNCT, "!"):
                pred_negated = True
            pred = self._expect(WORD).text
        opcode_token = self._expect(WORD)
        parts = opcode_token.text.split(".")
        opcode = parts[0]
        modifiers: list[str] = []
        dtypes: list[DType] = []
        space: str | None = None
        cmp: str | None = None
        for part in parts[1:]:
            if is_dtype_name(part):
                dtypes.append(dtype_from_name(part))
            elif part in _SPACES:
                space = part
            elif part in _CMP_OPS and opcode in _CMP_OPCODES and cmp is None:
                cmp = part
            else:
                modifiers.append(part)
        operands: list[ast.Operand] = []
        if not self._accept(PUNCT, ";"):
            while True:
                operands.append(self._parse_operand())
                if self._accept(PUNCT, ","):
                    continue
                self._expect(PUNCT, ";")
                break
        if not dtypes:
            dtypes.append(dtype_from_name("b32"))
        return ast.Instruction(
            opcode=opcode,
            modifiers=tuple(modifiers),
            dtypes=tuple(dtypes),
            operands=tuple(operands),
            pred=pred,
            pred_negated=pred_negated,
            space=space,
            cmp=cmp,
            index=index,
            line=opcode_token.line,
            text=opcode_token.text,
        )

    def _parse_operand(self) -> ast.Operand:
        token = self._peek()
        if token.kind == PUNCT and token.text == "{":
            self._next()
            elems: list[ast.Operand] = []
            while not self._accept(PUNCT, "}"):
                elems.append(self._parse_operand())
                self._accept(PUNCT, ",")
            return ast.Operand(kind=ast.VEC, elems=tuple(elems))
        if token.kind == PUNCT and token.text == "[":
            return self._parse_mem_operand()
        if token.kind == PUNCT and token.text in ("-", "+"):
            self._next()
            literal = self._next()
            sign = -1 if token.text == "-" else 1
            return self._literal_operand(literal, sign)
        if token.kind in (INT, FLOAT):
            self._next()
            return self._literal_operand(token, 1)
        word = self._expect(WORD).text
        if word.startswith("%"):
            return ast.Operand(kind=ast.REG, name=word)
        if word.startswith("$"):
            return ast.Operand(kind=ast.LABEL, name=word)
        return ast.Operand(kind=ast.SYM, name=word)

    def _parse_mem_operand(self) -> ast.Operand:
        self._expect(PUNCT, "[")
        base = self._expect(WORD).text
        offset = 0
        elems: tuple[ast.Operand, ...] = ()
        if self._accept(PUNCT, "+"):
            sign = -1 if self._accept(PUNCT, "-") else 1
            offset = sign * int(self._expect(INT).value)
        elif self._accept(PUNCT, "-"):
            offset = -int(self._expect(INT).value)
        elif self._accept(PUNCT, ","):
            # Texture operand: [texname, {coord, coord}]
            coords = self._parse_operand()
            elems = coords.elems if coords.kind == ast.VEC else (coords,)
        self._expect(PUNCT, "]")
        return ast.Operand(kind=ast.MEM, name=base, offset=offset,
                           elems=elems, is_reg_base=base.startswith("%"))

    def _literal_operand(self, token: Token, sign: int) -> ast.Operand:
        if token.kind == INT:
            return ast.Operand(kind=ast.IMM,
                               payload=(sign * int(token.value)) & MASK64)
        if token.kind == FLOAT:
            return ast.Operand(kind=ast.IMM,
                               payload=f64_to_bits(sign * float(token.value)),
                               imm_float=True)
        raise PTXSyntaxError(f"expected literal, found {token.text!r}",
                             token.line)


def parse_module(text: str, file_id: str = "", *,
                 allow_brace_init: bool = False) -> ast.PTXModule:
    """Parse one PTX translation unit into a module."""
    parser = Parser(text, file_id, allow_brace_init=allow_brace_init)
    return parser.parse()
