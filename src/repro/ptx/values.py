"""Typed reinterpretation of 64-bit register payloads.

GPGPU-Sim stores register contents in a C union (``ptx_reg_t``).  We keep
the same model: every register holds a raw 64-bit integer payload and the
*instruction's type specifier* decides how the payload is interpreted.
This makes the paper's historical bug classes expressible — computing a
``.u64`` remainder on ``.s32`` operands is simply reading the payload with
the wrong accessor.

All helpers are module-level functions on plain ints for speed; the
functional interpreter calls them in its inner loop.
"""

from __future__ import annotations

import math
import struct

from repro.ptx.dtypes import DType

MASK8 = 0xFF
MASK16 = 0xFFFF
MASK32 = 0xFFFFFFFF
MASK64 = 0xFFFFFFFFFFFFFFFF

_MASKS = {1: 0x1, 8: MASK8, 16: MASK16, 32: MASK32, 64: MASK64}
_SIGN_BITS = {1: 0x1, 8: 1 << 7, 16: 1 << 15, 32: 1 << 31, 64: 1 << 63}

_PACK_F32 = struct.Struct("<f")
_PACK_F64 = struct.Struct("<d")
_PACK_F16 = struct.Struct("<e")
_PACK_U32 = struct.Struct("<I")
_PACK_U64 = struct.Struct("<Q")
_PACK_U16 = struct.Struct("<H")


def mask(bits: int) -> int:
    return _MASKS[bits]


def to_unsigned(payload: int, bits: int) -> int:
    """Read the low *bits* of a payload as an unsigned integer."""
    return payload & _MASKS[bits]


def to_signed(payload: int, bits: int) -> int:
    """Read the low *bits* of a payload as a two's-complement integer."""
    value = payload & _MASKS[bits]
    if value & _SIGN_BITS[bits]:
        value -= 1 << bits
    return value


def from_int(value: int, bits: int = 64) -> int:
    """Wrap a Python int into an unsigned payload of the given width."""
    return value & _MASKS[bits]


def f32_to_bits(value: float) -> int:
    """Round a Python float to IEEE binary32 and return its bit pattern."""
    try:
        return _PACK_U32.unpack(_PACK_F32.pack(value))[0]
    except OverflowError:
        return 0x7F800000 if value > 0 else 0xFF800000


def bits_to_f32(payload: int) -> float:
    return _PACK_F32.unpack(_PACK_U32.pack(payload & MASK32))[0]


def f64_to_bits(value: float) -> int:
    return _PACK_U64.unpack(_PACK_F64.pack(value))[0]


def bits_to_f64(payload: int) -> float:
    return _PACK_F64.unpack(_PACK_U64.pack(payload & MASK64))[0]


def f16_to_bits(value: float) -> int:
    """Round to IEEE binary16.

    The paper added FP16 support to GPGPU-Sim "using an open source
    library"; our equivalent is the C library's half-float conversion
    exposed through :mod:`struct` format ``e``.
    """
    try:
        return _PACK_U16.unpack(_PACK_F16.pack(value))[0]
    except OverflowError:
        return 0x7C00 if value > 0 else 0xFC00


def bits_to_f16(payload: int) -> float:
    return _PACK_F16.unpack(_PACK_U16.pack(payload & MASK16))[0]


def read_typed(payload: int, dtype: DType) -> int | float:
    """Interpret a raw payload according to a PTX type specifier."""
    kind = dtype.kind
    if kind == "f":
        if dtype.bits == 32:
            return bits_to_f32(payload)
        if dtype.bits == 64:
            return bits_to_f64(payload)
        return bits_to_f16(payload)
    if kind == "s":
        return to_signed(payload, dtype.bits)
    # Unsigned and untyped-bits reads are identical.
    return payload & _MASKS[dtype.bits]


def write_typed(value: int | float, dtype: DType) -> int:
    """Encode a Python value as a raw payload per a PTX type specifier."""
    kind = dtype.kind
    if kind == "f":
        if dtype.bits == 32:
            return f32_to_bits(value)
        if dtype.bits == 64:
            return f64_to_bits(value)
        return f16_to_bits(value)
    return int(value) & _MASKS[dtype.bits]


def float_is_nan(value: float) -> bool:
    return isinstance(value, float) and math.isnan(value)


def saturate_float(value: float) -> float:
    """PTX ``.sat`` clamps to [0.0, 1.0] and maps NaN to +0.0."""
    if math.isnan(value):
        return 0.0
    return min(1.0, max(0.0, value))


def clamp_int(value: int, dtype: DType) -> int:
    """Clamp to the representable range (used by saturating ``cvt``)."""
    if dtype.kind == "s":
        lo = -(1 << (dtype.bits - 1))
        hi = (1 << (dtype.bits - 1)) - 1
    else:
        lo = 0
        hi = (1 << dtype.bits) - 1
    return min(hi, max(lo, value))
