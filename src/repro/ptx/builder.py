"""A small emitter DSL for writing PTX kernels from Python.

The cuDNN-clone kernels (:mod:`repro.cudnn.kernels`) are *generated PTX
text*, mirroring how the real cuDNN ships opaque PTX inside
``libcudnn.so``: the simulator only ever sees the emitted assembly and
must parse, load and execute it through the same path the paper
exercised.  The builder exists purely so that this repository's kernel
sources stay readable.

Typical use::

    b = PTXBuilder("vecadd", [("a", "u64"), ("b", "u64"),
                              ("out", "u64"), ("n", "u32")])
    a = b.ld_param("u64", "a")
    ...
    ptx_text = b.build()
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.errors import PTXLabelError
from repro.ptx.values import f32_to_bits, f64_to_bits

_REG_PREFIX = {
    "pred": "%p",
    "f16": "%h",
    "f32": "%f",
    "f64": "%fd",
    "u16": "%rs", "s16": "%rs", "b16": "%rs",
    "u32": "%r", "s32": "%r", "b32": "%r",
    "u64": "%rd", "s64": "%rd", "b64": "%rd",
    "u8": "%rc", "s8": "%rc", "b8": "%rc",
}

_DECL_TYPE = {
    "%p": "pred", "%h": "b16", "%f": "f32", "%fd": "f64",
    "%rs": "b16", "%r": "b32", "%rd": "b64", "%rc": "b16",
}


def f32(value: float) -> str:
    """Format an exact .f32 immediate as a PTX hex-float literal."""
    return f"0f{f32_to_bits(float(value)):08X}"


def f64(value: float) -> str:
    return f"0d{f64_to_bits(float(value)):016X}"


class PTXBuilder:
    """Accumulates PTX statements for one ``.entry`` kernel."""

    def __init__(self, name: str,
                 params: list[tuple[str, str]],
                 *, version: str = "6.0", target: str = "sm_60") -> None:
        self.name = name
        self.version = version
        self.target = target
        self._params = list(params)
        self._counters: dict[str, int] = {}
        self._lines: list[str] = []
        self._shared: list[str] = []
        self._local: list[str] = []
        self._label_counter = 0

    # ------------------------------------------------------------------
    # Registers, labels, declarations
    # ------------------------------------------------------------------
    def reg(self, dtype: str) -> str:
        """Allocate a fresh register of the given PTX type."""
        prefix = _REG_PREFIX[dtype]
        index = self._counters.get(prefix, 0)
        self._counters[prefix] = index + 1
        return f"{prefix}{index}"

    def regs(self, dtype: str, count: int) -> list[str]:
        return [self.reg(dtype) for _ in range(count)]

    def fresh_label(self, hint: str = "L") -> str:
        self._label_counter += 1
        return f"$_{hint}_{self._label_counter}"

    def place(self, label: str) -> None:
        self._lines.append(f"{label}:")

    def shared(self, name: str, dtype: str, count: int,
               align: int = 0) -> str:
        align_text = f".align {align} " if align else ""
        self._shared.append(
            f"    .shared {align_text}.{dtype} {name}[{count}];")
        return name

    def local(self, name: str, dtype: str, count: int) -> str:
        self._local.append(f"    .local .{dtype} {name}[{count}];")
        return name

    # ------------------------------------------------------------------
    # Raw emission
    # ------------------------------------------------------------------
    def ins(self, text: str, *operands: str, pred: str | None = None,
            pred_neg: bool = False) -> None:
        guard = ""
        if pred is not None:
            guard = f"@!{pred} " if pred_neg else f"@{pred} "
        body = f"{text} {', '.join(operands)}" if operands else text
        self._lines.append(f"    {guard}{body};")

    def comment(self, text: str) -> None:
        self._lines.append(f"    // {text}")

    # ------------------------------------------------------------------
    # Common idioms
    # ------------------------------------------------------------------
    def ld_param(self, dtype: str, name: str) -> str:
        reg = self.reg(dtype)
        self.ins(f"ld.param.{dtype}", reg, f"[{name}]")
        return reg

    def special(self, name: str) -> str:
        """Read a special register (%tid.x, %ctaid.y, ...) into a fresh reg."""
        reg = self.reg("u32")
        self.ins("mov.u32", reg, name)
        return reg

    def global_tid_x(self) -> str:
        """ctaid.x * ntid.x + tid.x."""
        tid = self.special("%tid.x")
        ntid = self.special("%ntid.x")
        ctaid = self.special("%ctaid.x")
        out = self.reg("u32")
        self.ins("mad.lo.s32", out, ctaid, ntid, tid)
        return out

    def imm_u32(self, value: int) -> str:
        reg = self.reg("u32")
        self.ins("mov.u32", reg, str(value))
        return reg

    def imm_f32(self, value: float) -> str:
        reg = self.reg("f32")
        self.ins("mov.f32", reg, f32(value))
        return reg

    def elem_addr(self, base64: str, index32: str, elem_bytes: int = 4) -> str:
        """base + index * elem_bytes, as a 64-bit address register."""
        out = self.reg("u64")
        self.ins("mad.wide.s32", out, index32, str(elem_bytes), base64)
        return out

    def load_global_f32(self, addr: str, offset: int = 0) -> str:
        reg = self.reg("f32")
        suffix = f"+{offset}" if offset else ""
        self.ins("ld.global.f32", reg, f"[{addr}{suffix}]")
        return reg

    def store_global_f32(self, addr: str, value: str,
                         offset: int = 0) -> None:
        suffix = f"+{offset}" if offset else ""
        self.ins("st.global.f32", f"[{addr}{suffix}]", value)

    # ------------------------------------------------------------------
    # Structured control flow
    # ------------------------------------------------------------------
    @contextmanager
    def if_then(self, pred: str, *, negate: bool = False):
        """Skip the body when *pred* is false (or true, if negate)."""
        skip = self.fresh_label("endif")
        self.ins(f"bra {skip}", pred=pred, pred_neg=not negate)
        yield
        self.place(skip)

    @contextmanager
    def for_range(self, counter: str, start: str | int, end: str,
                  step: int = 1):
        """``for counter in range(start, end, step)`` over s32 values."""
        head = self.fresh_label("loop")
        done = self.fresh_label("done")
        self.ins("mov.u32", counter, str(start))
        self.place(head)
        pred = self.reg("pred")
        self.ins("setp.ge.s32", pred, counter, end)
        self.ins(f"bra {done}", pred=pred)
        yield head
        self.ins("add.s32", counter, counter, str(step))
        self.ins(f"bra {head}")
        self.place(done)

    def guard_tid_below(self, tid: str, limit: str) -> None:
        """Exit threads whose global id is >= limit."""
        pred = self.reg("pred")
        self.ins("setp.ge.s32", pred, tid, limit)
        self.ins("bra $_exit_guard", pred=pred)
        self._needs_exit_guard = True

    def bar_sync(self) -> None:
        self.ins("bar.sync", "0")

    def exit(self) -> None:
        self.ins("exit")

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def _check_labels(self, body_lines: list[str]) -> None:
        """Reject duplicate labels and branches to labels never placed.

        Both bugs would otherwise only surface downstream — the parser
        rejects the duplicate, but an undefined target survives all the
        way to the first warp that takes the branch.
        """
        defined: set[str] = set()
        for line in body_lines:
            text = line.strip()
            if text.endswith(":") and not text.startswith("//"):
                label = text[:-1]
                if label in defined:
                    raise PTXLabelError(
                        f"kernel {self.name!r}: label {label!r} placed "
                        "twice")
                defined.add(label)
        for line in body_lines:
            text = line.strip()
            if text.startswith("//"):
                continue
            tokens = text.rstrip(";").split()
            if "bra" in tokens:
                target = tokens[-1]
                if target not in defined:
                    raise PTXLabelError(
                        f"kernel {self.name!r}: branch to undefined "
                        f"label {target!r}")

    def build(self) -> str:
        params = ",\n".join(
            f"    .param .{dtype} {name}" for name, dtype in self._params)
        decls = []
        for prefix, count in sorted(self._counters.items()):
            decls.append(
                f"    .reg .{_DECL_TYPE[prefix]} {prefix}<{count}>;")
        body_lines = list(self._lines)
        if getattr(self, "_needs_exit_guard", False):
            body_lines.append("$_exit_guard:")
            body_lines.append("    exit;")
        if not body_lines or not body_lines[-1].strip().startswith(
                ("exit", "ret")):
            body_lines.append("    exit;")
        self._check_labels(body_lines)
        parts = [
            f".version {self.version}",
            f".target {self.target}",
            ".address_size 64",
            "",
            f".visible .entry {self.name}(",
            params,
            ")",
            "{",
            *decls,
            *self._shared,
            *self._local,
            *body_lines,
            "}",
            "",
        ]
        return "\n".join(parts)
