"""PTX front end: dtypes, lexer, parser, AST, instruction semantics."""

from repro.ptx.dtypes import DType, dtype_from_name
from repro.ptx.parser import parse_module

__all__ = ["DType", "dtype_from_name", "parse_module"]
