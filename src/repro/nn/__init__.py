"""Miniature deep-learning framework dispatching to the cuDNN clone."""

from repro.nn.datasets import render_digit, synthetic_mnist
from repro.nn.lenet import LeNet, LeNetConfig
from repro.nn.modules import (
    Activation, BatchNorm2d, Conv2d, Flatten, LRN, Linear, MaxPool2d,
    Module, ReLU, SGD, Sequential, SoftmaxCrossEntropy, Tanh)
from repro.nn.reference import reference_forward
from repro.nn.tensor import DeviceTensor

__all__ = [
    "Activation", "BatchNorm2d", "Conv2d", "DeviceTensor", "Flatten", "LRN", "LeNet",
    "LeNetConfig", "Linear", "MaxPool2d", "Module", "ReLU", "SGD",
    "Sequential", "SoftmaxCrossEntropy", "Tanh", "reference_forward",
    "render_digit", "synthetic_mnist",
]
