"""Independent NumPy evaluation of the model stack.

This is the "self-checking code at the end of the application" role the
paper leans on for functional verification — a second implementation of
every layer, sharing only the weights with the simulated model.
"""

from __future__ import annotations

import numpy as np

from repro.nn.modules import (
    Activation, Conv2d, Flatten, LRN, Linear, MaxPool2d, Sequential)


def conv2d_ref(x: np.ndarray, w: np.ndarray, bias: np.ndarray | None,
               pad: int, stride: int) -> np.ndarray:
    n, c, h, width = x.shape
    k, _, r, s = w.shape
    p = (h + 2 * pad - r) // stride + 1
    q = (width + 2 * pad - s) // stride + 1
    xp = np.zeros((n, c, h + 2 * pad, width + 2 * pad), dtype=np.float64)
    xp[:, :, pad:pad + h, pad:pad + width] = x
    out = np.zeros((n, k, p, q), dtype=np.float64)
    for pi in range(p):
        for qi in range(q):
            patch = xp[:, :, pi * stride:pi * stride + r,
                       qi * stride:qi * stride + s]
            out[:, :, pi, qi] = np.einsum("ncrs,kcrs->nk", patch, w)
    if bias is not None:
        out += bias[None, :, None, None]
    return out


def maxpool_ref(x: np.ndarray, window: int, stride: int) -> np.ndarray:
    n, c, h, w = x.shape
    p = (h - window) // stride + 1
    q = (w - window) // stride + 1
    out = np.zeros((n, c, p, q), dtype=x.dtype)
    for pi in range(p):
        for qi in range(q):
            out[:, :, pi, qi] = x[:, :, pi * stride:pi * stride + window,
                                  qi * stride:qi * stride + window
                                  ].max(axis=(2, 3))
    return out


def lrn_ref(x: np.ndarray, nsize: int, alpha: float, beta: float,
            k: float) -> np.ndarray:
    n, c, h, w = x.shape
    half = nsize // 2
    out = np.zeros_like(x, dtype=np.float64)
    for ci in range(c):
        lo = max(0, ci - half)
        hi = min(c, ci + half + 1)
        sumsq = (x[:, lo:hi] ** 2).sum(axis=1)
        denom = (k + (alpha / nsize) * sumsq) ** beta
        out[:, ci] = x[:, ci] / denom
    return out


def softmax_ref(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def reference_forward(model, images: np.ndarray) -> np.ndarray:
    """Evaluate ``model.net`` layer-by-layer in NumPy."""
    x = images.astype(np.float64)
    net: Sequential = model.net
    for layer in net.layers:
        if isinstance(layer, Conv2d):
            bias = layer.bias.numpy() if layer.bias is not None else None
            x = conv2d_ref(x, layer.weight.numpy().astype(np.float64),
                           bias, layer.conv.pad_h, layer.conv.stride_h)
        elif isinstance(layer, MaxPool2d):
            x = maxpool_ref(x, layer.pool.window, layer.pool.stride)
        elif isinstance(layer, LRN):
            d = layer.lrn
            x = lrn_ref(x, d.nsize, d.alpha, d.beta, d.k)
        elif isinstance(layer, Flatten):
            x = x.reshape(x.shape[0], -1)
        elif isinstance(layer, Linear):
            x = x @ layer.weight.numpy().astype(np.float64)
            x = x + layer.bias.numpy()
        elif isinstance(layer, Activation):
            if layer.act.mode == "relu":
                x = np.maximum(x, 0.0)
            elif layer.act.mode == "tanh":
                x = np.tanh(x)
            else:
                x = 1.0 / (1.0 + np.exp(-x))
        else:
            raise TypeError(f"no reference for layer {type(layer)}")
    return x
