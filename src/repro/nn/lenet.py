"""LeNet for MNIST — the paper's correlation workload (Section IV).

The layer stack follows NVIDIA's cuDNN MNIST sample: two conv+pool
stages, an LRN (the "wide variety of cuDNN layers such as LRN and
Winograd" the paper uses MNIST to exercise), and two fully connected
layers.  Convolution algorithms are configurable per layer so the same
model drives the Winograd / FFT / GEMM kernels of Figures 6-7.

``reduced`` builds a small-geometry variant for fast unit tests and
timing-mode experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cudnn.algos import ConvBwdDataAlgo, ConvBwdFilterAlgo, ConvFwdAlgo
from repro.cudnn.api import Cudnn
from repro.nn.modules import (
    Conv2d, Flatten, LRN, Linear, MaxPool2d, Module, ReLU, Sequential,
    SoftmaxCrossEntropy, Tanh)
from repro.nn.tensor import DeviceTensor


@dataclass
class LeNetConfig:
    input_hw: int = 28
    in_channels: int = 1
    conv1_channels: int = 20
    conv2_channels: int = 50
    conv_kernel: int = 5
    fc_hidden: int = 128
    classes: int = 10
    with_lrn: bool = True
    lrn_texture: bool = False
    activation: str = "relu"
    conv1_fwd: ConvFwdAlgo = ConvFwdAlgo.FFT
    conv2_fwd: ConvFwdAlgo = ConvFwdAlgo.IMPLICIT_GEMM
    bwd_data: ConvBwdDataAlgo = ConvBwdDataAlgo.ALGO_1
    bwd_filter: ConvBwdFilterAlgo = ConvBwdFilterAlgo.ALGO_1
    seed: int = 7
    extra: dict = field(default_factory=dict)

    @classmethod
    def reduced(cls, **overrides) -> "LeNetConfig":
        """Small geometry: 12x12 inputs, thin layers (test/CI scale)."""
        base = dict(input_hw=12, conv1_channels=4, conv2_channels=6,
                    conv_kernel=3, fc_hidden=32, classes=10,
                    conv1_fwd=ConvFwdAlgo.WINOGRAD_NONFUSED,
                    conv2_fwd=ConvFwdAlgo.IMPLICIT_GEMM)
        base.update(overrides)
        return cls(**base)


class LeNet:
    """The full model plus its loss head."""

    def __init__(self, dnn: Cudnn, config: LeNetConfig | None = None
                 ) -> None:
        self.dnn = dnn
        self.config = config or LeNetConfig()
        c = self.config
        rng = np.random.default_rng(c.seed)
        act = ReLU if c.activation == "relu" else Tanh

        layers: list[Module] = [
            Conv2d(dnn, c.in_channels, c.conv1_channels, c.conv_kernel,
                   fwd_algo=c.conv1_fwd, bwd_data_algo=c.bwd_data,
                   bwd_filter_algo=c.bwd_filter, rng=rng),
            MaxPool2d(dnn, 2),
        ]
        if c.with_lrn:
            layers.append(LRN(dnn, use_texture=c.lrn_texture))
        layers += [
            Conv2d(dnn, c.conv1_channels, c.conv2_channels, c.conv_kernel,
                   fwd_algo=c.conv2_fwd, bwd_data_algo=c.bwd_data,
                   bwd_filter_algo=c.bwd_filter, rng=rng),
            MaxPool2d(dnn, 2),
            Flatten(),
        ]
        flat = self._flat_features()
        layers += [
            Linear(dnn, flat, c.fc_hidden, rng=rng),
            act(dnn),
            Linear(dnn, c.fc_hidden, c.classes, rng=rng),
        ]
        self.net = Sequential(*layers)
        self.loss = SoftmaxCrossEntropy(dnn)

    def _flat_features(self) -> int:
        c = self.config
        hw = c.input_hw
        hw = hw - c.conv_kernel + 1     # conv1 (valid)
        hw //= 2                        # pool1
        hw = hw - c.conv_kernel + 1     # conv2
        hw //= 2                        # pool2
        if hw < 1:
            raise ValueError(
                f"input {c.input_hw} too small for this geometry")
        return c.conv2_channels * hw * hw

    # ------------------------------------------------------------------
    def forward(self, images: np.ndarray) -> np.ndarray:
        """images: (N, C, H, W) float32 -> logits (N, classes)."""
        x = DeviceTensor.from_numpy(self.dnn.rt, images)
        return self.net(x).numpy()

    def predict(self, images: np.ndarray) -> np.ndarray:
        return np.argmax(self.forward(images), axis=1)

    def train_step(self, images: np.ndarray, labels: np.ndarray,
                   optimizer) -> float:
        x = DeviceTensor.from_numpy(self.dnn.rt, images)
        logits = self.net(x)
        loss, _probs = self.loss.forward(logits, labels)
        dlogits = self.loss.backward()
        self.net.backward(dlogits)
        optimizer.step()
        return loss

    def parameters(self):
        return self.net.parameters()

    def self_check(self, images: np.ndarray,
                   atol: float = 1e-2) -> bool:
        """The MNIST sample's self-checking code: compare the simulated
        forward pass against an independent NumPy evaluation of the same
        weights (returns True when every logit matches)."""
        from repro.nn.reference import reference_forward
        simulated = self.forward(images)
        expected = reference_forward(self, images)
        return bool(np.allclose(simulated, expected, atol=atol,
                                rtol=1e-3))
