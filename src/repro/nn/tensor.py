"""Device tensors for the miniature framework.

A :class:`DeviceTensor` owns a device allocation inside the simulated
GPU's global memory (obtained through the CUDA runtime, exactly the path
PyTorch's ``_C.so`` takes via ``libcudart.so`` in the paper's Section
III-E).  Host round-trips go through ``cudaMemcpy``.
"""

from __future__ import annotations

import numpy as np

from repro.cuda.runtime import CudaRuntime


class DeviceTensor:
    """A float32 NCHW (or flat) tensor living in simulated device memory."""

    def __init__(self, runtime: CudaRuntime, shape: tuple[int, ...],
                 ptr: int | None = None) -> None:
        self.rt = runtime
        self.shape = tuple(int(s) for s in shape)
        self.size = int(np.prod(self.shape)) if self.shape else 1
        self.ptr = ptr if ptr is not None else runtime.malloc(4 * self.size)

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_numpy(cls, runtime: CudaRuntime,
                   array: np.ndarray) -> "DeviceTensor":
        array = np.ascontiguousarray(array, dtype=np.float32)
        tensor = cls(runtime, array.shape)
        runtime.memcpy_h2d(tensor.ptr, array)
        return tensor

    @classmethod
    def zeros(cls, runtime: CudaRuntime,
              shape: tuple[int, ...]) -> "DeviceTensor":
        tensor = cls(runtime, shape)
        runtime.memcpy_h2d(tensor.ptr, np.zeros(tensor.size, np.float32))
        return tensor

    # -- host access --------------------------------------------------------
    def numpy(self) -> np.ndarray:
        return self.rt.download_f32(self.ptr, self.size).reshape(self.shape)

    def copy_from(self, array: np.ndarray) -> None:
        array = np.ascontiguousarray(array, dtype=np.float32)
        if array.size != self.size:
            raise ValueError(
                f"size mismatch: tensor {self.shape}, array {array.shape}")
        self.rt.memcpy_h2d(self.ptr, array)

    # -- shape helpers --------------------------------------------------------
    def view(self, shape: tuple[int, ...]) -> "DeviceTensor":
        """Reinterpret without copying (same device buffer)."""
        if int(np.prod(shape)) != self.size:
            raise ValueError(f"cannot view {self.shape} as {shape}")
        return DeviceTensor(self.rt, shape, ptr=self.ptr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeviceTensor(shape={self.shape}, ptr={self.ptr:#x})"
