"""Synthetic MNIST-like digit dataset.

The real MNIST download is unavailable offline, so we generate digit
images deterministically: each class renders a 5x7 glyph (a standard
seven-segment-ish bitmap font) scaled into the target resolution, with
per-sample jitter (shift + noise).  The mapping class -> glyph is exactly
learnable, which is all the workload needs (DESIGN.md substitution
table).
"""

from __future__ import annotations

import numpy as np

_GLYPHS = {
    0: ["111", "101", "101", "101", "111"],
    1: ["010", "110", "010", "010", "111"],
    2: ["111", "001", "111", "100", "111"],
    3: ["111", "001", "111", "001", "111"],
    4: ["101", "101", "111", "001", "001"],
    5: ["111", "100", "111", "001", "111"],
    6: ["111", "100", "111", "101", "111"],
    7: ["111", "001", "010", "010", "010"],
    8: ["111", "101", "111", "101", "111"],
    9: ["111", "101", "111", "001", "111"],
}


def _glyph_array(digit: int) -> np.ndarray:
    rows = _GLYPHS[digit]
    return np.array([[float(ch) for ch in row] for row in rows],
                    dtype=np.float32)


def render_digit(digit: int, size: int, *, shift: tuple[int, int] = (0, 0),
                 rng: np.random.Generator | None = None,
                 noise: float = 0.0) -> np.ndarray:
    """Render one digit into a size x size float image in [0, 1]."""
    glyph = _glyph_array(digit)
    scale = max(1, size // 7)
    upscaled = np.kron(glyph, np.ones((scale, scale), dtype=np.float32))
    image = np.zeros((size, size), dtype=np.float32)
    gh, gw = upscaled.shape
    top = max(0, (size - gh) // 2 + shift[0])
    left = max(0, (size - gw) // 2 + shift[1])
    bottom = min(size, top + gh)
    right = min(size, left + gw)
    image[top:bottom, left:right] = upscaled[:bottom - top, :right - left]
    if noise > 0 and rng is not None:
        image = image + rng.normal(0.0, noise, image.shape
                                   ).astype(np.float32)
    return np.clip(image, 0.0, 1.0)


def synthetic_mnist(count: int, size: int = 28, *, seed: int = 0,
                    classes: int = 10, noise: float = 0.08
                    ) -> tuple[np.ndarray, np.ndarray]:
    """(images (N,1,size,size) float32, labels (N,) int) pairs."""
    rng = np.random.default_rng(seed)
    images = np.zeros((count, 1, size, size), dtype=np.float32)
    labels = np.zeros(count, dtype=np.int64)
    max_shift = max(1, size // 14)
    for i in range(count):
        digit = int(rng.integers(0, classes))
        shift = (int(rng.integers(-max_shift, max_shift + 1)),
                 int(rng.integers(-max_shift, max_shift + 1)))
        images[i, 0] = render_digit(digit, size, shift=shift, rng=rng,
                                    noise=noise)
        labels[i] = digit
    return images, labels
