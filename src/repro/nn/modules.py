"""Layers for the miniature deep-learning framework.

Each module's ``forward``/``backward`` dispatches to the cuDNN-clone API,
so a training step is a stream of opaque PTX kernel launches — the
workload shape the paper simulates.  Backpropagation is a reverse-order
module chain (caching whatever the cuDNN calls need), mirroring how
framework autograd ultimately bottoms out in cudnnConvolutionBackward*.
"""

from __future__ import annotations

import math

import numpy as np

from repro.cudnn.algos import ConvBwdDataAlgo, ConvBwdFilterAlgo, ConvFwdAlgo
from repro.cudnn.api import Cudnn
from repro.cudnn.descriptors import (
    ActivationDescriptor, ConvolutionDescriptor, FilterDescriptor,
    LRNDescriptor, PoolingDescriptor, TensorDescriptor)
from repro.nn.tensor import DeviceTensor


class Module:
    """Base layer: forward caches whatever backward needs."""

    def forward(self, x: DeviceTensor) -> DeviceTensor:
        raise NotImplementedError

    def backward(self, dy: DeviceTensor) -> DeviceTensor:
        raise NotImplementedError

    def parameters(self) -> list[tuple[DeviceTensor, DeviceTensor]]:
        """(weight, gradient) pairs."""
        return []

    def __call__(self, x: DeviceTensor) -> DeviceTensor:
        return self.forward(x)


def _tensor_desc(t: DeviceTensor) -> TensorDescriptor:
    if len(t.shape) != 4:
        raise ValueError(f"expected NCHW tensor, got shape {t.shape}")
    return TensorDescriptor(*t.shape)


class Conv2d(Module):
    """cudnnConvolutionForward/Backward* with selectable algorithms."""

    def __init__(self, dnn: Cudnn, in_channels: int, out_channels: int,
                 kernel_size: int, *, padding: int = 0, stride: int = 1,
                 bias: bool = True,
                 fwd_algo: ConvFwdAlgo = ConvFwdAlgo.IMPLICIT_GEMM,
                 bwd_data_algo: ConvBwdDataAlgo = ConvBwdDataAlgo.ALGO_1,
                 bwd_filter_algo: ConvBwdFilterAlgo = (
                     ConvBwdFilterAlgo.ALGO_1),
                 rng: np.random.Generator | None = None) -> None:
        self.dnn = dnn
        self.rt = dnn.rt
        self.w_desc = FilterDescriptor(out_channels, in_channels,
                                       kernel_size, kernel_size)
        self.conv = ConvolutionDescriptor(pad_h=padding, pad_w=padding,
                                          stride_h=stride, stride_w=stride)
        self.fwd_algo = fwd_algo
        self.bwd_data_algo = bwd_data_algo
        self.bwd_filter_algo = bwd_filter_algo
        rng = rng or np.random.default_rng(0)
        fan_in = in_channels * kernel_size * kernel_size
        scale = math.sqrt(2.0 / fan_in)
        init = rng.standard_normal(
            (out_channels, in_channels, kernel_size,
             kernel_size)).astype(np.float32) * scale
        self.weight = DeviceTensor.from_numpy(self.rt, init)
        self.dweight = DeviceTensor.zeros(self.rt, self.weight.shape)
        self.bias = (DeviceTensor.zeros(self.rt, (out_channels,))
                     if bias else None)
        self.dbias = (DeviceTensor.zeros(self.rt, (out_channels,))
                      if bias else None)
        self._x: DeviceTensor | None = None

    def forward(self, x: DeviceTensor) -> DeviceTensor:
        self._x = x
        x_desc = _tensor_desc(x)
        y_desc, y_ptr = self.dnn.convolution_forward(
            x_desc, x.ptr, self.w_desc, self.weight.ptr, self.conv,
            self.fwd_algo)
        y = DeviceTensor(self.rt, y_desc.dims, ptr=y_ptr)
        if self.bias is not None:
            self.dnn.add_bias(y_desc, y.ptr, self.bias.ptr)
        return y

    def backward(self, dy: DeviceTensor) -> DeviceTensor:
        assert self._x is not None, "forward() must run before backward()"
        x = self._x
        x_desc = _tensor_desc(x)
        dy_desc = _tensor_desc(dy)
        if self.bias is not None:
            self.dnn.bias_grad(dy_desc, dy.ptr, self.dbias.ptr)
        self.dnn.convolution_backward_filter(
            x_desc, x.ptr, dy_desc, dy.ptr, self.conv,
            self.bwd_filter_algo, self.w_desc, self.dweight.ptr)
        dx = DeviceTensor(self.rt, x.shape)
        self.dnn.convolution_backward_data(
            self.w_desc, self.weight.ptr, dy_desc, dy.ptr, self.conv,
            self.bwd_data_algo, x_desc, dx.ptr)
        return dx

    def parameters(self) -> list[tuple[DeviceTensor, DeviceTensor]]:
        params = [(self.weight, self.dweight)]
        if self.bias is not None:
            params.append((self.bias, self.dbias))
        return params


class MaxPool2d(Module):
    def __init__(self, dnn: Cudnn, window: int = 2,
                 stride: int | None = None) -> None:
        self.dnn = dnn
        self.pool = PoolingDescriptor(mode="max", window=window,
                                      stride=stride or window)
        self._x_desc: TensorDescriptor | None = None
        self._y_desc: TensorDescriptor | None = None
        self._argmax = 0

    def forward(self, x: DeviceTensor) -> DeviceTensor:
        self._x_desc = _tensor_desc(x)
        y_desc = self.pool.output_dims(self._x_desc)
        y = DeviceTensor(self.dnn.rt, y_desc.dims)
        self._y_desc, self._argmax = self.dnn.pooling_forward(
            self.pool, self._x_desc, x.ptr, y.ptr)
        return y

    def backward(self, dy: DeviceTensor) -> DeviceTensor:
        assert self._x_desc is not None and self._y_desc is not None
        dx = DeviceTensor(self.dnn.rt, self._x_desc.dims)
        self.dnn.pooling_backward(self.pool, self._x_desc, self._y_desc,
                                  dy.ptr, self._argmax, dx.ptr)
        return dx


class Activation(Module):
    def __init__(self, dnn: Cudnn, mode: str = "relu") -> None:
        self.dnn = dnn
        self.act = ActivationDescriptor(mode=mode)
        self._x: DeviceTensor | None = None
        self._y: DeviceTensor | None = None

    def forward(self, x: DeviceTensor) -> DeviceTensor:
        self._x = x
        y = DeviceTensor(self.dnn.rt, x.shape)
        self.dnn.activation_forward(self.act, x.ptr, y.ptr, x.size)
        self._y = y
        return y

    def backward(self, dy: DeviceTensor) -> DeviceTensor:
        assert self._x is not None and self._y is not None
        dx = DeviceTensor(self.dnn.rt, self._x.shape)
        self.dnn.activation_backward(self.act, self._x.ptr, self._y.ptr,
                                     dy.ptr, dx.ptr, self._x.size)
        return dx


class ReLU(Activation):
    def __init__(self, dnn: Cudnn) -> None:
        super().__init__(dnn, "relu")


class Tanh(Activation):
    def __init__(self, dnn: Cudnn) -> None:
        super().__init__(dnn, "tanh")


class LRN(Module):
    """Cross-channel LRN; set ``use_texture`` to fetch the input through
    the texture unit (Section III-C's code path)."""

    def __init__(self, dnn: Cudnn, nsize: int = 5, alpha: float = 1e-4,
                 beta: float = 0.75, k: float = 2.0, *,
                 use_texture: bool = False) -> None:
        self.dnn = dnn
        self.lrn = LRNDescriptor(nsize=nsize, alpha=alpha, beta=beta, k=k)
        self.use_texture = use_texture
        self._x: DeviceTensor | None = None
        self._y: DeviceTensor | None = None
        self._scale = 0

    def forward(self, x: DeviceTensor) -> DeviceTensor:
        self._x = x
        y = DeviceTensor(self.dnn.rt, x.shape)
        self._scale = self.dnn.lrn_forward(
            self.lrn, _tensor_desc(x), x.ptr, y.ptr,
            use_texture=self.use_texture)
        self._y = y
        return y

    def backward(self, dy: DeviceTensor) -> DeviceTensor:
        assert self._x is not None and self._y is not None
        dx = DeviceTensor(self.dnn.rt, self._x.shape)
        self.dnn.lrn_backward(self.lrn, _tensor_desc(self._x),
                              self._x.ptr, self._y.ptr, dy.ptr,
                              self._scale, dx.ptr)
        return dx


class BatchNorm2d(Module):
    """Spatial batch normalisation through the cudnnBatchNormalization*
    calls, with device-side running statistics."""

    def __init__(self, dnn: Cudnn, channels: int, *, eps: float = 1e-5,
                 momentum: float = 0.1) -> None:
        self.dnn = dnn
        self.rt = dnn.rt
        self.channels = channels
        self.eps = eps
        self.momentum = momentum
        self.training = True
        self.gamma = DeviceTensor.from_numpy(
            self.rt, np.ones(channels, np.float32))
        self.beta = DeviceTensor.zeros(self.rt, (channels,))
        self.dgamma = DeviceTensor.zeros(self.rt, (channels,))
        self.dbeta = DeviceTensor.zeros(self.rt, (channels,))
        self.running_mean = DeviceTensor.zeros(self.rt, (channels,))
        self.running_invstd = DeviceTensor.from_numpy(
            self.rt, np.ones(channels, np.float32))
        self._x: DeviceTensor | None = None
        self._saved: tuple[int, int] | None = None

    def forward(self, x: DeviceTensor) -> DeviceTensor:
        desc = _tensor_desc(x)
        if desc.c != self.channels:
            raise ValueError(
                f"BatchNorm2d({self.channels}) got {desc.c} channels")
        y = DeviceTensor(self.rt, x.shape)
        if self.training:
            self._x = x
            mean, invstd = self.dnn.batchnorm_forward_training(
                desc, x.ptr, y.ptr, self.gamma.ptr, self.beta.ptr,
                self.eps)
            self._saved = (mean, invstd)
            # running = (1-m)*running + m*batch, on device.
            for running, batch in ((self.running_mean, mean),
                                   (self.running_invstd, invstd)):
                self.dnn.add_tensor(batch, running.ptr, running.ptr,
                                    self.channels, alpha=self.momentum,
                                    beta=1.0 - self.momentum)
        else:
            self.dnn.batchnorm_forward_inference(
                desc, x.ptr, y.ptr, self.gamma.ptr, self.beta.ptr,
                self.running_mean.ptr, self.running_invstd.ptr)
        return y

    def backward(self, dy: DeviceTensor) -> DeviceTensor:
        assert self._x is not None and self._saved is not None, \
            "training forward() must precede backward()"
        desc = _tensor_desc(self._x)
        dx = DeviceTensor(self.rt, self._x.shape)
        mean, invstd = self._saved
        self.dnn.batchnorm_backward(
            desc, self._x.ptr, dy.ptr, dx.ptr, self.gamma.ptr, mean,
            invstd, self.dgamma.ptr, self.dbeta.ptr)
        return dx

    def parameters(self) -> list[tuple[DeviceTensor, DeviceTensor]]:
        return [(self.gamma, self.dgamma), (self.beta, self.dbeta)]


class Flatten(Module):
    """NCHW -> (N, CHW) view."""

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: DeviceTensor) -> DeviceTensor:
        self._shape = x.shape
        n = x.shape[0]
        return x.view((n, x.size // n))

    def backward(self, dy: DeviceTensor) -> DeviceTensor:
        assert self._shape is not None
        return dy.view(self._shape)


class Linear(Module):
    """Fully connected layer: y = x @ W + b, with W stored (in, out).

    Batch-1 inference uses the ``gemv2T_kernel_val`` kernel (the GEMV2T
    of the paper's Figure 7); batched paths use tiled SGEMM plus explicit
    transposes for the gradients.
    """

    def __init__(self, dnn: Cudnn, in_features: int, out_features: int,
                 rng: np.random.Generator | None = None) -> None:
        self.dnn = dnn
        self.rt = dnn.rt
        self.in_features = in_features
        self.out_features = out_features
        rng = rng or np.random.default_rng(0)
        scale = math.sqrt(2.0 / in_features)
        init = rng.standard_normal(
            (in_features, out_features)).astype(np.float32) * scale
        self.weight = DeviceTensor.from_numpy(self.rt, init)
        self.dweight = DeviceTensor.zeros(self.rt, self.weight.shape)
        self.bias = DeviceTensor.zeros(self.rt, (out_features,))
        self.dbias = DeviceTensor.zeros(self.rt, (out_features,))
        self._x: DeviceTensor | None = None

    def forward(self, x: DeviceTensor) -> DeviceTensor:
        if len(x.shape) != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Linear expects (N, {self.in_features}), got {x.shape}")
        self._x = x
        n = x.shape[0]
        y = DeviceTensor(self.rt, (n, self.out_features))
        if n == 1:
            self.dnn.sgemv_t(self.weight.ptr, x.ptr, y.ptr,
                             self.in_features, self.out_features,
                             alpha=1.0, beta=0.0)
        else:
            self.dnn.sgemm(x.ptr, self.weight.ptr, y.ptr, n,
                           self.out_features, self.in_features)
        # y += bias (broadcast over rows): reuse the NCHW bias kernel
        # with H*W == 1 so "channels" are the output features.
        self.dnn.add_bias(TensorDescriptor(n, self.out_features, 1, 1),
                          y.ptr, self.bias.ptr)
        return y

    def backward(self, dy: DeviceTensor) -> DeviceTensor:
        assert self._x is not None
        x = self._x
        n = x.shape[0]
        # dbias = column sums of dy.
        self.dnn.bias_grad(TensorDescriptor(n, self.out_features, 1, 1),
                           dy.ptr, self.dbias.ptr)
        # dW (in,out) = x^T (in,N) @ dy (N,out)
        xt = DeviceTensor(self.rt, (self.in_features, n))
        self._transpose(x.ptr, xt.ptr, n, self.in_features)
        self.dnn.sgemm(xt.ptr, dy.ptr, self.dweight.ptr,
                       self.in_features, self.out_features, n)
        # dx (N,in) = dy (N,out) @ W^T (out,in)
        wt = DeviceTensor(self.rt, (self.out_features, self.in_features))
        self._transpose(self.weight.ptr, wt.ptr, self.in_features,
                        self.out_features)
        dx = DeviceTensor(self.rt, x.shape)
        self.dnn.sgemm(dy.ptr, wt.ptr, dx.ptr, n, self.in_features,
                       self.out_features)
        return dx

    def _transpose(self, src: int, dst: int, rows: int, cols: int) -> None:
        total = rows * cols
        self.dnn._launch1d("cudnn_transpose", total,
                           [src, dst, rows, cols, total])

    def parameters(self) -> list[tuple[DeviceTensor, DeviceTensor]]:
        return [(self.weight, self.dweight), (self.bias, self.dbias)]


class Sequential(Module):
    def __init__(self, *layers: Module) -> None:
        self.layers = list(layers)

    def forward(self, x: DeviceTensor) -> DeviceTensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, dy: DeviceTensor) -> DeviceTensor:
        for layer in reversed(self.layers):
            dy = layer.backward(dy)
        return dy

    def parameters(self) -> list[tuple[DeviceTensor, DeviceTensor]]:
        return [pair for layer in self.layers
                for pair in layer.parameters()]


class SoftmaxCrossEntropy:
    """Softmax + NLL loss with the fused backward kernel."""

    def __init__(self, dnn: Cudnn) -> None:
        self.dnn = dnn
        self.rt = dnn.rt
        self._probs: DeviceTensor | None = None
        self._labels: int = 0
        self._rows = 0
        self._cols = 0

    def forward(self, logits: DeviceTensor,
                labels: np.ndarray) -> tuple[float, np.ndarray]:
        """Returns (mean loss, probability matrix)."""
        rows, cols = logits.shape
        self._rows, self._cols = rows, cols
        probs = DeviceTensor(self.rt, (rows, cols))
        self.dnn.softmax_forward(logits.ptr, probs.ptr, rows, cols)
        labels32 = np.ascontiguousarray(labels, dtype=np.uint32)
        self._labels = self.rt.malloc(4 * rows)
        self.rt.memcpy_h2d(self._labels, labels32)
        loss_buf = self.rt.malloc(4 * rows)
        self.dnn.nll_loss(probs.ptr, self._labels, loss_buf, rows, cols)
        losses = self.rt.download_f32(loss_buf, rows)
        self._probs = probs
        return float(losses.mean()), probs.numpy()

    def backward(self) -> DeviceTensor:
        assert self._probs is not None
        dx = DeviceTensor(self.rt, (self._rows, self._cols))
        self.dnn.softmax_nll_backward(self._probs.ptr, self._labels,
                                      dx.ptr, self._rows, self._cols,
                                      1.0 / self._rows)
        return dx


class SGD:
    """Plain SGD through the cublasSaxpy kernel (w += -lr * dw)."""

    def __init__(self, dnn: Cudnn,
                 params: list[tuple[DeviceTensor, DeviceTensor]],
                 lr: float = 0.01) -> None:
        self.dnn = dnn
        self.params = params
        self.lr = lr

    def step(self) -> None:
        for weight, grad in self.params:
            self.dnn.saxpy(grad.ptr, weight.ptr, -self.lr, weight.size)

    def zero_grad(self) -> None:
        for _weight, grad in self.params:
            self.dnn.fill_zero(grad.ptr, grad.size)
