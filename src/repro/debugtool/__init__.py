"""Functional-debugging toolkit (paper Section III-D)."""

from repro.debugtool.bisect import (
    DebugReport, DebugToolError, DifferentialDebugger, InstructionDiff)
from repro.debugtool.golden import GoldenExecutor, LockstepDiff
from repro.debugtool.instrument import (
    InstrumentedKernel, decode_log, instrument_kernel, instrumented_sites)
from repro.debugtool.ptxjit import ExtractedKernel, KernelExtractor
from repro.debugtool.ptxprint import (
    format_instruction, format_kernel, format_operand)

__all__ = [
    "DebugReport", "DebugToolError", "DifferentialDebugger",
    "ExtractedKernel", "GoldenExecutor", "InstructionDiff",
    "InstrumentedKernel", "KernelExtractor",
    "LockstepDiff", "decode_log", "format_instruction", "format_kernel",
    "format_operand", "instrument_kernel", "instrumented_sites",
]
