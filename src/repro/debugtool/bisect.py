"""Three-level differential debugging (paper Section III-D).

The paper's process: "first identify which cuDNN API call results in
incorrect results, then identify which GPU kernel launched within that
API call is executing incorrectly, and finally identify the first
instruction in that kernel that executed incorrectly."

* Level 1 — run the workload on the *suspect* simulator (with legacy
  quirks) and on the *reference* (fixed semantics, playing the real-GPU
  role), hashing device buffers after every cuDNN API call.
* Level 2 — within the first bad call, compare the buffers reachable
  from each kernel's pointer parameters after every launch ("we assume
  that any kernel parameter that is a pointer may point to an output
  buffer ... we also modified GPGPU-Sim to obtain the size of any GPU
  memory buffers pointed to by these pointers").
* Level 3 — capture the global-memory image and arguments just before
  the bad kernel, instrument its PTX to log every register write
  (Figure 3), replay it on both simulators through the driver-API
  ``cuLaunchKernel`` (the entry point the paper added for exactly this
  tool), and report the first differing log entry.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable

from repro.cuda.runtime import CudaRuntime
from repro.cudnn.api import ApiCall, Cudnn
from repro.cudnn.library import build_application_binary
from repro.debugtool.instrument import (
    ENTRY_BYTES, LOG_PARAM, decode_log, instrument_kernel)
from repro.errors import ReproError
from repro.quirks import FIXED, LegacyQuirks

Workload = Callable[[Cudnn], None]

#: Builds a fresh, empty runtime (no program loaded).  The debugger
#: loads its application binary into whatever the factory returns, so a
#: factory can pre-wire quirks, backends or fault injectors.
RuntimeFactory = Callable[[], CudaRuntime]


class DebugToolError(ReproError):
    pass


@dataclass
class InstructionDiff:
    pc: int
    text: str
    thread: int
    entry_index: int
    suspect_payload: int
    reference_payload: int
    #: Static def-use slice of the bad instruction's source registers:
    #: ``{"pc", "depth", "register", "text"}`` per producer site, nearest
    #: first (from :func:`repro.analysis.dataflow.producer_chain`).  The
    #: first wrong *value* often surfaces instructions after the wrong
    #: *semantics* executed; the slice names the upstream candidates.
    producers: list[dict] = field(default_factory=list)


@dataclass
class DebugReport:
    """The bisection verdict."""

    api_index: int | None = None
    api_name: str | None = None
    kernel_ordinal: int | None = None
    kernel_name: str | None = None
    instruction: InstructionDiff | None = None
    notes: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.api_index is None

    @property
    def level(self) -> int:
        """Deepest bisection level reached: 0 clean, 1 API call,
        2 kernel, 3 instruction."""
        if self.api_index is None:
            return 0
        if self.kernel_ordinal is None:
            return 1
        if self.instruction is None:
            return 2
        return 3

    def to_dict(self) -> dict:
        """Machine-readable verdict (campaign scoreboards, tooling)."""
        data: dict = {
            "level": self.level,
            "clean": self.clean,
            "api_index": self.api_index,
            "api_name": self.api_name,
            "kernel_ordinal": self.kernel_ordinal,
            "kernel_name": self.kernel_name,
            "notes": list(self.notes),
        }
        if self.instruction is not None:
            d = self.instruction
            data["instruction"] = {
                "pc": d.pc,
                "text": d.text.strip(),
                "thread": d.thread,
                "entry_index": d.entry_index,
                "suspect_payload": d.suspect_payload,
                "reference_payload": d.reference_payload,
                "producers": [dict(site) for site in d.producers],
            }
        return data

    def render(self) -> str:
        if self.clean:
            return "no divergence found: suspect matches reference"
        lines = [f"first bad API call: #{self.api_index} {self.api_name}"]
        if self.kernel_name is not None:
            lines.append(
                f"first bad kernel:   #{self.kernel_ordinal} "
                f"{self.kernel_name}")
        if self.instruction is not None:
            d = self.instruction
            lines.append(
                f"first bad instruction: pc={d.pc} `{d.text.strip()}` "
                f"(thread {d.thread}, entry {d.entry_index}: "
                f"suspect={d.suspect_payload:#x} "
                f"reference={d.reference_payload:#x})")
            if d.producers:
                lines.append("static producer chain of its sources:")
                for site in d.producers:
                    lines.append(
                        f"  [depth {site['depth']}] pc={site['pc']} "
                        f"{site['register']}: {site['text'].strip()}")
        lines.extend(self.notes)
        return "\n".join(lines)


def _digest_allocations(runtime: CudaRuntime) -> str:
    hasher = hashlib.sha256()
    for base in sorted(runtime.global_mem.allocations):
        size = runtime.global_mem.allocations[base]
        hasher.update(base.to_bytes(8, "little"))
        hasher.update(runtime.global_mem.read(base, size))
    return hasher.hexdigest()


def _digest_pointer_params(runtime: CudaRuntime, args: list) -> str:
    hasher = hashlib.sha256()
    for value in args:
        if not isinstance(value, int):
            continue
        found = runtime.global_mem.allocation_containing(value)
        if found is None:
            continue
        base, size = found
        hasher.update(base.to_bytes(8, "little"))
        hasher.update(runtime.global_mem.read(base, size))
    return hasher.hexdigest()


class DifferentialDebugger:
    """Drives the 3-level bisection for one workload."""

    def __init__(self, workload: Workload, *,
                 suspect_quirks: LegacyQuirks | None = None,
                 reference_quirks: LegacyQuirks = FIXED,
                 suspect_factory: RuntimeFactory | None = None,
                 reference_factory: RuntimeFactory | None = None,
                 binary=None,
                 entries_per_thread: int = 4096) -> None:
        if suspect_factory is None and suspect_quirks is None:
            raise DebugToolError(
                "need either suspect_quirks or suspect_factory")
        self.workload = workload
        self.suspect_quirks = suspect_quirks
        self.reference_quirks = reference_quirks
        self._factories: dict[str, RuntimeFactory] = {
            "suspect": suspect_factory or (
                lambda: CudaRuntime(quirks=suspect_quirks)),
            "reference": reference_factory or (
                lambda: CudaRuntime(quirks=reference_quirks)),
        }
        self.binary = binary or build_application_binary()
        self.entries_per_thread = entries_per_thread

    # ------------------------------------------------------------------
    def _new_runtime(self, role: str) -> CudaRuntime:
        """Fresh runtime for *role* ("suspect"/"reference"), binary
        loaded."""
        runtime = self._factories[role]()
        runtime.load_binary(self.binary)
        return runtime

    # ------------------------------------------------------------------
    # Level 1: API calls
    # ------------------------------------------------------------------
    def find_bad_api_call(self) -> tuple[int, ApiCall] | None:
        suspect_digests: list[tuple[str, str]] = []
        reference_digests: list[tuple[str, str]] = []

        def collect(target, runtime_box):
            def hook(call: ApiCall) -> None:
                target.append((call.name,
                               _digest_allocations(runtime_box[0])))
            return hook

        box: list[CudaRuntime] = [None]  # type: ignore[list-item]
        runtime = self._new_runtime("suspect")
        box[0] = runtime
        dnn = Cudnn(runtime)
        dnn.on_api_end = collect(suspect_digests, box)
        self._run_workload_tolerant(dnn)

        box2: list[CudaRuntime] = [None]  # type: ignore[list-item]
        runtime2 = self._new_runtime("reference")
        box2[0] = runtime2
        dnn2 = Cudnn(runtime2)
        dnn2.on_api_end = collect(reference_digests, box2)
        self.workload(dnn2)
        runtime2.synchronize()

        for index, (suspect, reference) in enumerate(
                zip(suspect_digests, reference_digests)):
            if suspect[1] != reference[1]:
                return index, dnn2.api_log[index]
        if len(suspect_digests) != len(reference_digests):
            index = min(len(suspect_digests), len(reference_digests))
            return index, dnn2.api_log[min(index,
                                           len(dnn2.api_log) - 1)]
        return None

    def _run_workload_tolerant(self, dnn: Cudnn) -> None:
        """Quirky simulators may fault mid-workload; that *is* a diff."""
        try:
            self.workload(dnn)
            dnn.rt.synchronize()
        except ReproError:
            pass

    # ------------------------------------------------------------------
    # Level 2: kernels within the bad API call
    # ------------------------------------------------------------------
    def find_bad_kernel(self, api_call: ApiCall) -> tuple[int, str] | None:
        first, last = api_call.first_ordinal, api_call.last_ordinal

        def collector(target: list, runtime_box: list):
            def hook(ordinal, name, grid, block, args) -> None:
                if first <= ordinal <= last:
                    target.append((ordinal, name, _digest_pointer_params(
                        runtime_box[0], args)))
            return hook

        suspect: list = []
        box: list = [None]
        runtime = self._new_runtime("suspect")
        box[0] = runtime
        dnn = Cudnn(runtime)
        runtime.after_kernel_hooks.append(collector(suspect, box))
        self._run_workload_tolerant(dnn)

        reference: list = []
        box2: list = [None]
        runtime2 = self._new_runtime("reference")
        box2[0] = runtime2
        dnn2 = Cudnn(runtime2)
        runtime2.after_kernel_hooks.append(collector(reference, box2))
        self.workload(dnn2)
        runtime2.synchronize()

        for (s_ord, s_name, s_digest), (_r_ord, _r_name, r_digest) in zip(
                suspect, reference):
            if s_digest != r_digest:
                return s_ord, s_name
        if len(suspect) != len(reference):
            index = min(len(suspect), len(reference))
            entry = reference[index] if index < len(reference) else \
                reference[-1]
            return entry[0], entry[1]
        return None

    # ------------------------------------------------------------------
    # Level 3: instructions within the bad kernel
    # ------------------------------------------------------------------
    def find_bad_instruction(self, kernel_ordinal: int,
                             entries_per_thread: int = 4096
                             ) -> InstructionDiff | None:
        capture: dict = {}

        def before(ordinal, name, grid, block, args) -> None:
            if ordinal == kernel_ordinal and not capture:
                capture.update(
                    name=name, grid=grid, block=block, args=list(args),
                    memory=box[0].global_mem.snapshot())

        box: list = [None]
        runtime = self._new_runtime("reference")
        box[0] = runtime
        dnn = Cudnn(runtime)
        runtime.before_kernel_hooks.append(before)
        self.workload(dnn)
        runtime.synchronize()
        if not capture:
            raise DebugToolError(
                f"kernel ordinal {kernel_ordinal} never launched")

        kernel = runtime.program.find_kernel(capture["name"])
        instrumented = instrument_kernel(
            kernel, entries_per_thread=entries_per_thread)
        gx, gy, gz = capture["grid"]
        bx, by, bz = capture["block"]
        threads = gx * gy * gz * bx * by * bz

        logs = {}
        for label in ("suspect", "reference"):
            replay = self._new_runtime(label)
            replay.global_mem.restore(capture["memory"])
            replay.load_ptx(instrumented.ptx, file_id="instrumented")
            log_bytes = threads * instrumented.bytes_per_thread
            log_ptr = replay.malloc(log_bytes)
            replay.memset(log_ptr, 0xFF, log_bytes)
            func = replay.program.kernels_qualified[
                f"instrumented::{capture['name']}"]
            try:
                replay.cu_launch_kernel(func, capture["grid"],
                                        capture["block"],
                                        capture["args"] + [log_ptr])
                replay.synchronize()
            except ReproError:
                pass  # a faulting quirk still leaves a partial log
            raw = replay.memcpy_d2h(log_ptr, log_bytes)
            logs[label] = decode_log(raw, threads, entries_per_thread)

        # "The first instruction that executed incorrectly": each
        # thread's log is its own dynamic clock, so the earliest
        # divergence is the one with the smallest entry index across
        # all threads — not the first divergence of the lowest thread
        # id, whose corruption may be second-hand (propagated through
        # memory from another thread's earlier bad write).  A bare
        # length mismatch (identical common prefix) is weaker evidence
        # — the suspect bug may have corrupted the instrumentation's
        # own log addressing, leaving whole slots empty — so it is
        # used only when no thread shows a real prefix divergence.
        best: tuple[int, int, tuple, tuple] | None = None
        best_length_only: tuple[int, int, tuple, tuple] | None = None
        for thread in range(threads):
            s_entries = logs["suspect"][thread]
            r_entries = logs["reference"][thread]
            found = None
            for entry_index, (s_entry, r_entry) in enumerate(
                    zip(s_entries, r_entries)):
                if s_entry != r_entry:
                    found = (entry_index, thread, s_entry, r_entry)
                    break
            if found is not None:
                if best is None or found < best:
                    best = found
                    if best[0] == 0:
                        break  # can't diverge earlier than entry 0
            elif len(s_entries) != len(r_entries):
                longer = r_entries if len(r_entries) > len(s_entries) \
                    else s_entries
                entry_index = min(len(s_entries), len(r_entries))
                found = (entry_index, thread,
                         (longer[entry_index][0], 0),
                         (longer[entry_index][0], 0))
                if best_length_only is None or found < best_length_only:
                    best_length_only = found
        if best is None:
            best = best_length_only
        if best is None:
            return None
        entry_index, thread, s_entry, r_entry = best
        pc = r_entry[0]
        from repro.analysis.dataflow import producer_chain
        from repro.debugtool.ptxprint import format_instruction
        return InstructionDiff(
            pc=pc, text=format_instruction(kernel.body[pc]),
            thread=thread, entry_index=entry_index,
            suspect_payload=s_entry[1],
            reference_payload=r_entry[1],
            producers=producer_chain(kernel, pc))

    # ------------------------------------------------------------------
    def run(self) -> DebugReport:
        """Full three-level bisection."""
        report = DebugReport()
        bad_api = self.find_bad_api_call()
        if bad_api is None:
            return report
        report.api_index, api_call = bad_api
        report.api_name = api_call.name
        bad_kernel = self.find_bad_kernel(api_call)
        if bad_kernel is None:
            report.notes.append(
                "API-level diff found but kernels matched; host-side "
                "state (e.g. stream ordering) differs")
            return report
        report.kernel_ordinal, report.kernel_name = bad_kernel
        try:
            report.instruction = self.find_bad_instruction(
                report.kernel_ordinal, self.entries_per_thread)
        except ReproError as error:
            report.notes.append(f"instruction replay failed: {error}")
        return report
