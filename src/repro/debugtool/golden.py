"""Lockstep golden execution of a single kernel.

"At a high level, we compare the execution of every instruction executed
by GPGPU-Sim to the result obtained from executing that instruction on
hardware, then flag the first instruction with an error."

:class:`GoldenExecutor` plays the hardware role with a second functional
engine running *fixed* semantics on a cloned memory image.  Both engines
step warp-for-warp; after every instruction the destination registers
are compared, so the first faulty instruction is flagged with zero
instrumentation overhead.  (The instrumentation flow in
:mod:`repro.debugtool.instrument` is the paper-faithful alternative that
works through the normal launch path.)
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.functional.executor import AT_BARRIER, FunctionalEngine
from repro.functional.state import CTAState, LaunchContext
from repro.quirks import FIXED, LegacyQuirks


@dataclass
class LockstepDiff:
    pc: int
    text: str
    cta: int
    warp: int
    register: str
    lane: int
    suspect_payload: int
    reference_payload: int


def _clone_launch(launch: LaunchContext,
                  quirks: LegacyQuirks) -> LaunchContext:
    global_mem = copy.deepcopy(launch.global_mem)
    param_mem = copy.deepcopy(launch.param_mem)
    return LaunchContext(
        kernel=launch.kernel, grid_dim=launch.grid_dim,
        block_dim=launch.block_dim, global_mem=global_mem,
        param_mem=param_mem, const_mem=launch.const_mem,
        module_symbols=launch.module_symbols,
        textures=launch.textures, quirks=quirks)


class GoldenExecutor:
    """Run suspect vs reference engines in lockstep over one launch."""

    def __init__(self, launch: LaunchContext, *,
                 suspect_quirks: LegacyQuirks,
                 reference_quirks: LegacyQuirks = FIXED,
                 reference_contract_fp16: bool = False) -> None:
        self.suspect_launch = _clone_launch(launch, suspect_quirks)
        self.reference_launch = _clone_launch(launch, reference_quirks)
        #: hardware ("reference") contracts FP16 mul+add into fused FMA
        #: — the Section III-D.1 mismatch source.
        self.reference_contract_fp16 = reference_contract_fp16

    def find_divergence(self, *,
                        max_steps: int = 2_000_000) -> LockstepDiff | None:
        suspect = FunctionalEngine(self.suspect_launch)
        reference = FunctionalEngine(
            self.reference_launch,
            contract_fp16=self.reference_contract_fp16)
        steps = 0
        for cta_linear in range(self.suspect_launch.num_ctas):
            s_cta = CTAState(self.suspect_launch, cta_linear)
            r_cta = CTAState(self.reference_launch, cta_linear)
            while not r_cta.finished:
                progressed = False
                for warp_index, (s_warp, r_warp) in enumerate(
                        zip(s_cta.warps, r_cta.warps)):
                    while (not r_warp.finished and not r_warp.at_barrier):
                        pc = r_warp.simt.pc
                        try:
                            s_rec = suspect.step_warp(s_warp)
                        except Exception as error:  # faulting quirk
                            from repro.debugtool.ptxprint import (
                                format_instruction)
                            inst = reference.kernel.body[s_warp.simt.pc]
                            return LockstepDiff(
                                pc=s_warp.simt.pc,
                                text=(f"suspect faulted: {error} at "
                                      + format_instruction(inst).strip()),
                                cta=cta_linear, warp=warp_index,
                                register="<fault>", lane=-1,
                                suspect_payload=0, reference_payload=0)
                        r_rec = reference.step_warp(r_warp)
                        del s_rec
                        steps += 1
                        if steps > max_steps:
                            raise RuntimeError("lockstep budget exceeded")
                        if r_rec in (None, AT_BARRIER):
                            break
                        progressed = True
                        if pc in reference._contract_sites:
                            # The reference fused two instructions into
                            # one step; advance the suspect over the
                            # absorbed add/sub before comparing.
                            if (not s_warp.finished
                                    and s_warp.simt.pc == pc + 1):
                                suspect.step_warp(s_warp)
                            _mul, consumer = \
                                reference._contract_sites[pc]
                            diff = self._compare_registers(
                                pc + 1, consumer, s_warp, r_warp,
                                cta_linear, warp_index,
                                r_rec.active_mask)
                            if diff is not None:
                                return diff
                        diff = self._compare(pc, r_rec, s_warp, r_warp,
                                             cta_linear, warp_index)
                        if diff is not None:
                            return diff
                        if (not r_warp.finished
                                and s_warp.simt.pc != r_warp.simt.pc):
                            return LockstepDiff(
                                pc=pc,
                                text=("control-flow divergence after "
                                      + r_rec.inst.text),
                                cta=cta_linear, warp=warp_index,
                                register="<pc>", lane=-1,
                                suspect_payload=s_warp.simt.pc,
                                reference_payload=r_warp.simt.pc)
                released = reference.try_release_barrier(r_cta)
                suspect.try_release_barrier(s_cta)
                if not progressed and not released:
                    break
        return None

    def _compare(self, pc, record, s_warp, r_warp, cta, warp
                 ) -> LockstepDiff | None:
        return self._compare_registers(pc, record.inst, s_warp, r_warp,
                                       cta, warp, record.active_mask)

    def _compare_registers(self, pc, inst, s_warp, r_warp, cta, warp,
                           active_mask) -> LockstepDiff | None:
        if not inst.operands:
            return None
        dst = inst.operands[0]
        names: list[str] = []
        if dst.kind == "reg":
            names.append(dst.name)
        elif dst.kind == "vec":
            names.extend(e.name for e in dst.elems if e.kind == "reg")
        # Compare through the instruction's own width: correct readers
        # never see upper union bytes, so neither should the checker.
        width_mask = (1 << min(inst.dtype.bits, 64)) - 1
        if inst.dtype.kind == "p":
            width_mask = 1
        for name in names:
            for lane in range(32):
                if not (active_mask >> lane) & 1:
                    continue
                s_value = s_warp.regs[lane].get(name, 0) & width_mask
                r_value = r_warp.regs[lane].get(name, 0) & width_mask
                if s_value != r_value:
                    from repro.debugtool.ptxprint import format_instruction
                    return LockstepDiff(
                        pc=pc, text=format_instruction(inst), cta=cta,
                        warp=warp, register=name, lane=lane,
                        suspect_payload=s_value,
                        reference_payload=r_value)
        return None
