"""Single-kernel extraction and standalone replay (the ptxjit flow).

The paper's debugging tool captures "the data which is being copied to
the GPU before a kernel is launched, along with the parameters passed
into the kernel" and replays individual kernels "using our debugging
framework, the extracted PTX, and a version of the ptxjit CUDA SDK
example".  Section VI asks for more of this: "extract specific kernels,
run them individually ... and study them using higher-level tools like
NVProf".

:class:`KernelExtractor` runs a workload once, snapshots everything at a
chosen launch ordinal, and produces a self-contained
:class:`ExtractedKernel` — printable PTX, grid/block, arguments, and the
global-memory image — that replays on a fresh runtime through the
driver-API ``cuLaunchKernel`` under any backend (functional, oracle, or
cycle-level timing).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.cuda.fatbinary import FatBinary
from repro.cuda.runtime import CudaRuntime, KernelProfile
from repro.cudnn.api import Cudnn
from repro.cudnn.library import build_application_binary
from repro.debugtool.bisect import DebugToolError
from repro.debugtool.ptxprint import format_kernel
from repro.quirks import FIXED, LegacyQuirks


@dataclass
class ExtractedKernel:
    """One captured launch, replayable in isolation."""

    name: str
    ptx: str
    grid: tuple[int, int, int]
    block: tuple[int, int, int]
    args: list
    memory: dict = field(repr=False, default_factory=dict)
    ordinal: int = 0

    # -- persistence ------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("wb") as handle:
            pickle.dump(self, handle, protocol=pickle.HIGHEST_PROTOCOL)
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ExtractedKernel":
        with Path(path).open("rb") as handle:
            kernel = pickle.load(handle)
        if not isinstance(kernel, cls):
            raise DebugToolError(f"{path} is not an ExtractedKernel")
        return kernel

    # -- replay -----------------------------------------------------------
    def replay(self, *, backend=None,
               quirks: LegacyQuirks = FIXED) -> CudaRuntime:
        """Launch the kernel standalone; returns the runtime (inspect
        ``runtime.profiles[-1]`` or read back device buffers)."""
        runtime = (CudaRuntime(backend=backend, quirks=quirks)
                   if backend is not None else CudaRuntime(quirks=quirks))
        runtime.load_ptx(self.ptx, file_id=f"extracted:{self.name}")
        runtime.global_mem.restore(self.memory)
        func = runtime.cu_module_get_function(self.name)
        runtime.cu_launch_kernel(func, self.grid, self.block, self.args)
        runtime.synchronize()
        return runtime

    def profile(self, backend) -> KernelProfile:
        """Replay under *backend* and return the launch profile."""
        runtime = self.replay(backend=backend)
        return runtime.profiles[-1]


class KernelExtractor:
    """Runs a workload and captures chosen launches."""

    def __init__(self, workload: Callable[[Cudnn], None], *,
                 binary: FatBinary | None = None,
                 quirks: LegacyQuirks = FIXED) -> None:
        self.workload = workload
        self.binary = binary or build_application_binary()
        self.quirks = quirks

    def extract(self, ordinal: int) -> ExtractedKernel:
        captured: dict = {}
        runtime = CudaRuntime(quirks=self.quirks)
        runtime.load_binary(self.binary)

        def before(launch_ordinal, name, grid, block, args) -> None:
            if launch_ordinal == ordinal and not captured:
                captured.update(
                    name=name, grid=grid, block=block, args=list(args),
                    memory=runtime.global_mem.snapshot())

        runtime.before_kernel_hooks.append(before)
        dnn = Cudnn(runtime)
        self.workload(dnn)
        runtime.synchronize()
        if not captured:
            raise DebugToolError(
                f"workload never launched kernel ordinal {ordinal} "
                f"(saw {len(runtime.launch_log)} launches)")
        kernel = runtime.program.find_kernel(captured["name"])
        return ExtractedKernel(
            name=captured["name"],
            ptx=format_kernel(kernel),
            grid=captured["grid"],
            block=captured["block"],
            args=captured["args"],
            memory=captured["memory"],
            ordinal=ordinal)

    def extract_all(self, *, limit: int | None = None
                    ) -> list[ExtractedKernel]:
        """Capture every launch of the workload (bounded by *limit*)."""
        runtime = CudaRuntime(quirks=self.quirks)
        runtime.load_binary(self.binary)
        dnn = Cudnn(runtime)
        self.workload(dnn)
        runtime.synchronize()
        count = len(runtime.launch_log)
        if limit is not None:
            count = min(count, limit)
        return [self.extract(i) for i in range(count)]
