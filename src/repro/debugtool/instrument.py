"""PTX instrumentation: log every register write to global memory.

Reproduces the paper's Figure 3 transformation (there done with an
LLVM-based tool): after every instruction that writes a value to a
general-purpose register, store ``(static pc, register payload)`` into a
per-thread region of a global log buffer.  Comparing the logs from the
simulator-under-test and the reference run identifies "the first
instruction that executed incorrectly".

Log layout: per linear thread id, ``entries_per_thread`` records of
16 bytes — ``u32 pc`` at +0, the register payload at +8.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ptx import ast
from repro.ptx.dtypes import U64
from repro.debugtool.ptxprint import format_instruction, format_kernel

ENTRY_BYTES = 16
LOG_PARAM = "__instr_log"

#: opcodes whose first operand is NOT a general-register destination.
_NO_DEST = frozenset(["st", "bra", "bar", "exit", "ret", "membar",
                      "fence", "red"])


def _dest_width(kernel: ast.Kernel, inst: ast.Instruction) -> int | None:
    """Bit width of the destination register, or None to skip."""
    if inst.opcode in _NO_DEST or not inst.operands:
        return None
    dst = inst.operands[0]
    if dst.kind != ast.REG:
        return None
    decl = kernel.reg_decls.get(dst.name)
    if decl is None or decl.kind == "p":
        return None
    if inst.opcode == "setp":
        return None
    return min(decl.bits, 64)


def instrumented_sites(kernel: ast.Kernel) -> list[int]:
    """Static pcs whose register writes will be logged."""
    return [inst.index for inst in kernel.body
            if _dest_width(kernel, inst) is not None]


@dataclass
class InstrumentedKernel:
    ptx: str
    name: str
    sites: list[int]
    entries_per_thread: int

    @property
    def bytes_per_thread(self) -> int:
        return self.entries_per_thread * ENTRY_BYTES


def instrument_kernel(kernel: ast.Kernel, *,
                      entries_per_thread: int = 2048
                      ) -> InstrumentedKernel:
    """Emit the instrumented PTX for *kernel* (new module text)."""
    labels_at: dict[int, list[str]] = {}
    for label, index in kernel.labels.items():
        labels_at.setdefault(index, []).append(label)

    prologue = [
        "    .reg .b64 %__dbglp;",
        "    .reg .b32 %__dbgt0;",
        "    .reg .b32 %__dbgt1;",
        "    .reg .b32 %__dbgpc;",
        f"    ld.param.u64 %__dbglp, [{LOG_PARAM}];",
        # linear thread id = (ctaid.y * nctaid.x + ctaid.x) * (ntid.x *
        # ntid.y * ntid.z) + tid.z*ntid.y*ntid.x + tid.y*ntid.x + tid.x
        "    mov.u32 %__dbgt0, %ctaid.y;",
        "    mov.u32 %__dbgt1, %nctaid.x;",
        "    mul.lo.s32 %__dbgt0, %__dbgt0, %__dbgt1;",
        "    mov.u32 %__dbgt1, %ctaid.x;",
        "    add.s32 %__dbgt0, %__dbgt0, %__dbgt1;",
        "    mov.u32 %__dbgt1, %ntid.x;",
        "    mul.lo.s32 %__dbgt0, %__dbgt0, %__dbgt1;",
        "    mov.u32 %__dbgt1, %ntid.y;",
        "    mul.lo.s32 %__dbgt0, %__dbgt0, %__dbgt1;",
        "    mov.u32 %__dbgt1, %tid.y;",
        "    mov.u32 %__dbgpc, %ntid.x;",
        "    mul.lo.s32 %__dbgt1, %__dbgt1, %__dbgpc;",
        "    add.s32 %__dbgt0, %__dbgt0, %__dbgt1;",
        "    mov.u32 %__dbgt1, %tid.x;",
        "    add.s32 %__dbgt0, %__dbgt0, %__dbgt1;",
        f"    mad.wide.s32 %__dbglp, %__dbgt0, "
        f"{entries_per_thread * ENTRY_BYTES}, %__dbglp;",
    ]

    body: list[str] = list(prologue)
    sites: list[int] = []
    for inst in kernel.body:
        for label in labels_at.get(inst.index, []):
            body.append(f"{label}:")
        body.append(format_instruction(inst))
        width = _dest_width(kernel, inst)
        if width is None:
            continue
        sites.append(inst.index)
        dst = inst.operands[0].name
        store_type = f"b{width}"
        guard = ""
        if inst.pred is not None:
            # Log under the same guard so inactive lanes stay aligned.
            guard = (f"@!{inst.pred} " if inst.pred_negated
                     else f"@{inst.pred} ")
        body.append(f"    {guard}mov.u32 %__dbgpc, {inst.index};")
        body.append(f"    {guard}st.global.u32 [%__dbglp], %__dbgpc;")
        body.append(f"    {guard}st.global.{store_type} [%__dbglp+8], "
                    f"{dst};")
        body.append(f"    {guard}add.u64 %__dbglp, %__dbglp, "
                    f"{ENTRY_BYTES};")
    for label in labels_at.get(len(kernel.body), []):
        body.append(f"{label}:")

    ptx = format_kernel(kernel, extra_params=[(LOG_PARAM, U64)],
                        body_lines=body)
    return InstrumentedKernel(ptx=ptx, name=kernel.name, sites=sites,
                              entries_per_thread=entries_per_thread)


def decode_log(raw: bytes, threads: int,
               entries_per_thread: int) -> list[list[tuple[int, int]]]:
    """raw bytes -> per-thread [(pc, payload), ...] lists."""
    out: list[list[tuple[int, int]]] = []
    stride = entries_per_thread * ENTRY_BYTES
    for t in range(threads):
        base = t * stride
        entries: list[tuple[int, int]] = []
        for e in range(entries_per_thread):
            offset = base + e * ENTRY_BYTES
            pc = int.from_bytes(raw[offset:offset + 4], "little")
            payload = int.from_bytes(raw[offset + 8:offset + 16], "little")
            if pc == 0xFFFFFFFF:
                break
            entries.append((pc, payload))
        out.append(entries)
    return out

