"""AST -> PTX text printer.

Used by the debug tool to emit "extracted PTX" for single-kernel replay
(the paper's ptxjit flow) and by the instrumentation pass to write the
modified kernel back out as loadable PTX.
"""

from __future__ import annotations

from repro.ptx import ast
from repro.ptx.dtypes import DType


def format_operand(op: ast.Operand) -> str:
    kind = op.kind
    if kind == ast.REG or kind == ast.SYM or kind == ast.LABEL:
        return op.name
    if kind == ast.IMM:
        if op.imm_float:
            return f"0d{op.payload:016X}"
        # Emit as signed decimal when the payload looks negative in 64b.
        if op.payload >> 63:
            return str(op.payload - (1 << 64))
        return str(op.payload)
    if kind == ast.VEC:
        inner = ", ".join(format_operand(e) for e in op.elems)
        return "{" + inner + "}"
    if kind == ast.MEM:
        if op.elems:  # texture operand
            coords = ", ".join(format_operand(e) for e in op.elems)
            return f"[{op.name}, {{{coords}}}]"
        if op.offset > 0:
            return f"[{op.name}+{op.offset}]"
        if op.offset < 0:
            return f"[{op.name}{op.offset}]"
        return f"[{op.name}]"
    raise ValueError(f"cannot format operand kind {kind!r}")


def format_instruction(inst: ast.Instruction) -> str:
    parts = [inst.opcode]
    consumed_types = 0
    # Reassemble the dotted opcode: space, cmp, modifiers, dtypes.  The
    # original ordering is not recorded, but PTX accepts any order of
    # suffixes for our subset as long as dtypes come last.
    if inst.space:
        parts.append(inst.space)
    if inst.cmp:
        parts.append(inst.cmp)
    parts.extend(inst.modifiers)
    for dtype in inst.dtypes[:len(inst.dtypes) - consumed_types]:
        parts.append(dtype.name)
    opcode = ".".join(parts)
    guard = ""
    if inst.pred is not None:
        guard = f"@!{inst.pred} " if inst.pred_negated else f"@{inst.pred} "
    operands = ", ".join(format_operand(op) for op in inst.operands)
    if operands:
        return f"    {guard}{opcode} {operands};"
    return f"    {guard}{opcode};"


def format_kernel(kernel: ast.Kernel, *,
                  extra_params: list[tuple[str, DType]] | None = None,
                  body_lines: list[str] | None = None) -> str:
    """Print a kernel (optionally with replaced body / extra params)."""
    params = [f"    .param .{p.dtype.name} {p.name}"
              + (f"[{p.array_len}]" if p.array_len else "")
              for p in kernel.params]
    for name, dtype in (extra_params or []):
        params.append(f"    .param .{dtype.name} {name}")
    lines = [
        ".version 6.0",
        f".target sm_60",
        ".address_size 64",
        "",
        f".visible .entry {kernel.name}(",
        ",\n".join(params),
        ")",
        "{",
    ]
    for name, dtype in sorted(kernel.reg_decls.items()):
        lines.append(f"    .reg .{dtype.name} {name};")
    for var in kernel.shared_vars:
        align = f".align {var.align} " if var.align else ""
        lines.append(f"    .shared {align}.{var.dtype.name} "
                     f"{var.name}[{var.array_len}];")
    for var in kernel.local_vars:
        lines.append(f"    .local .{var.dtype.name} "
                     f"{var.name}[{var.array_len}];")
    if body_lines is None:
        body_lines = body_with_labels(kernel)
    lines.extend(body_lines)
    lines.append("}")
    return "\n".join(lines)


def body_with_labels(kernel: ast.Kernel) -> list[str]:
    """The kernel body as text lines with labels re-inserted."""
    labels_at: dict[int, list[str]] = {}
    for label, index in kernel.labels.items():
        labels_at.setdefault(index, []).append(label)
    lines: list[str] = []
    for inst in kernel.body:
        for label in labels_at.get(inst.index, []):
            lines.append(f"{label}:")
        lines.append(format_instruction(inst))
    for label in labels_at.get(len(kernel.body), []):
        lines.append(f"{label}:")
    return lines
