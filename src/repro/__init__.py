"""repro — a pure-Python reproduction of Lew et al., "Analyzing Machine
Learning Workloads Using a Detailed GPU Simulator" (ISPASS 2019).

The package is a GPGPU-Sim-style GPU simulator plus everything the paper
needed around it:

* :mod:`repro.ptx` / :mod:`repro.functional` — PTX front end and the
  warp-lockstep functional simulator (with the paper's instruction fixes
  and re-injectable legacy bugs, :mod:`repro.quirks`).
* :mod:`repro.cuda` — CUDA runtime/driver API, streams + events,
  textures, fat-binary loader with per-file PTX extraction.
* :mod:`repro.cudnn` / :mod:`repro.cublas` — a cuDNN/cuBLAS clone whose
  kernels are opaque generated PTX (FFT, Winograd, GEMM, LRN, ...).
* :mod:`repro.timing` / :mod:`repro.power` — cycle-level performance
  model and GPUWattch-style power breakdown.
* :mod:`repro.aerialvision` — per-interval metric plots.
* :mod:`repro.nn` — a miniature PyTorch with LeNet and synthetic MNIST.
* :mod:`repro.checkpoint` — Figure 4/5 checkpoint-resume flows.
* :mod:`repro.debugtool` — the three-level differential debugger.
* :mod:`repro.harness` — the virtual-hardware oracle, the Figure 6/7
  correlation runner, and the Section V case-study drivers.
"""

from repro.quirks import FIXED, LegacyQuirks, STOCK_GPGPUSIM

__version__ = "1.0.0"

__all__ = ["FIXED", "LegacyQuirks", "STOCK_GPGPUSIM", "__version__"]
