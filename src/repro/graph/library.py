"""The TF-style shared library with brace-initialised PTX globals."""

from __future__ import annotations

from functools import lru_cache

from repro.cuda.fatbinary import FatBinary
from repro.cudnn.library import build_libcublas, build_libcudnn

#: The kernel TensorFlow-style code ships: a scale-and-shift whose
#: coefficients live in a curly-brace-initialised module global — the
#: exact PTX syntax GPGPU-Sim could not parse (paper Section III-E).
PYWRAP_PTX = """
.version 6.0
.target sm_60
.address_size 64

.global .f32 tf_affine_consts[2] = {0.5, 1.0};

.visible .entry tf_scale_and_shift(
    .param .u64 src,
    .param .u64 dst,
    .param .u32 n
)
{
    .reg .b32 %r<5>;
    .reg .b64 %rd<6>;
    .reg .f32 %f<5>;
    .reg .pred %p<1>;
    ld.param.u64 %rd0, [src];
    ld.param.u64 %rd1, [dst];
    ld.param.u32 %r0, [n];
    mov.u32 %r1, %ctaid.x;
    mov.u32 %r2, %ntid.x;
    mov.u32 %r3, %tid.x;
    mad.lo.s32 %r4, %r1, %r2, %r3;
    setp.ge.s32 %p0, %r4, %r0;
    @%p0 exit;
    mov.u64 %rd2, tf_affine_consts;
    ld.global.f32 %f0, [%rd2];
    ld.global.f32 %f1, [%rd2+4];
    mad.wide.s32 %rd3, %r4, 4, %rd0;
    mad.wide.s32 %rd4, %r4, 4, %rd1;
    ld.global.f32 %f2, [%rd3];
    fma.rn.f32 %f3, %f2, %f0, %f1;
    st.global.f32 [%rd4], %f3;
    exit;
}
"""


@lru_cache(maxsize=None)
def build_pywrap_library() -> FatBinary:
    """``_pywrap_tensorflow_internal.so``: TF kernels + cuDNN/cuBLAS."""
    lib = FatBinary("_pywrap_tensorflow_internal.so")
    lib.add_ptx("tf_kernels.cu", PYWRAP_PTX)
    lib.link_dynamic(build_libcudnn())
    lib.link_dynamic(build_libcublas())
    return lib
