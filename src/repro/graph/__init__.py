"""A TensorFlow-style static-graph frontend (paper Section III-E).

The paper got PyTorch running but TensorFlow stalled: its
``_pywrap_tensorflow_internal.so`` PTX "uses syntax that is not
supported by GPGPU-Sim to initialize arrays using curly braces ({}).
Thus, adding this support is left to future work."

This package completes that future work end to end:

* :func:`build_pywrap_library` produces the TF-style library whose PTX
  *does* use curly-brace global initialisers — loading it with the
  stock parser fails exactly like the paper describes, and succeeds
  with ``allow_brace_init=True``.
* :class:`Graph`/:class:`Session` are a miniature deferred-execution
  frontend (placeholders, constants, conv2d, bias_add, relu, max_pool,
  dense, softmax) that dispatches through the same cuDNN/cuBLAS clone
  the PyTorch-style :mod:`repro.nn` uses.
"""

from repro.graph.frontend import Graph, Session
from repro.graph.library import build_pywrap_library

__all__ = ["Graph", "Session", "build_pywrap_library"]
