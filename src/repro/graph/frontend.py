"""Deferred-execution graph frontend dispatching to the cuDNN clone."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.cuda.runtime import CudaRuntime
from repro.cudnn.algos import ConvFwdAlgo
from repro.cudnn.api import Cudnn
from repro.cudnn.descriptors import (
    ActivationDescriptor, ConvolutionDescriptor, FilterDescriptor,
    PoolingDescriptor, TensorDescriptor)
from repro.errors import ReproError
from repro.graph.library import build_pywrap_library
from repro.nn.tensor import DeviceTensor

_ids = itertools.count()


class GraphError(ReproError):
    pass


@dataclass(frozen=True)
class Node:
    """One graph operation (immutable; evaluation is Session state)."""

    op: str
    inputs: tuple["Node", ...] = ()
    attrs: tuple = ()
    node_id: int = field(default_factory=lambda: next(_ids))

    @property
    def attr_dict(self) -> dict:
        return dict(self.attrs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.op}#{self.node_id}>"


class Graph:
    """A static computation graph, tf.Graph style."""

    def __init__(self) -> None:
        self.nodes: list[Node] = []

    def _add(self, op: str, inputs: tuple[Node, ...] = (),
             **attrs) -> Node:
        node = Node(op=op, inputs=inputs,
                    attrs=tuple(sorted(attrs.items())))
        self.nodes.append(node)
        return node

    # -- sources ---------------------------------------------------------
    def placeholder(self, shape: tuple[int, ...], name: str = "") -> Node:
        return self._add("placeholder", shape=tuple(shape),
                         name=name or f"ph{len(self.nodes)}")

    def constant(self, value: np.ndarray) -> Node:
        value = np.ascontiguousarray(value, dtype=np.float32)
        return self._add("constant", value=value.tobytes(),
                         shape=value.shape)

    # -- ops ---------------------------------------------------------------
    def conv2d(self, x: Node, filters: Node, *, padding: int = 0,
               stride: int = 1,
               algo: ConvFwdAlgo = ConvFwdAlgo.IMPLICIT_GEMM) -> Node:
        return self._add("conv2d", (x, filters), padding=padding,
                         stride=stride, algo=algo.value)

    def bias_add(self, x: Node, bias: Node) -> Node:
        return self._add("bias_add", (x, bias))

    def relu(self, x: Node) -> Node:
        return self._add("relu", (x,))

    def tanh(self, x: Node) -> Node:
        return self._add("tanh", (x,))

    def max_pool(self, x: Node, *, window: int = 2,
                 stride: int | None = None) -> Node:
        return self._add("max_pool", (x,), window=window,
                         stride=stride or window)

    def flatten(self, x: Node) -> Node:
        return self._add("flatten", (x,))

    def dense(self, x: Node, weights: Node, bias: Node | None = None
              ) -> Node:
        inputs = (x, weights) + ((bias,) if bias is not None else ())
        return self._add("dense", inputs)

    def softmax(self, x: Node) -> Node:
        return self._add("softmax", (x,))

    def scale_and_shift(self, x: Node) -> Node:
        """The TF-library kernel with brace-initialised constants."""
        return self._add("scale_and_shift", (x,))


class Session:
    """tf.Session: owns the runtime, loads the TF-style library.

    Loading requires curly-brace initialiser support; constructing a
    Session on a runtime without ``allow_brace_init=True`` raises the
    same parse error that stopped the paper's TensorFlow bring-up.
    """

    def __init__(self, runtime: CudaRuntime | None = None) -> None:
        self.rt = runtime or CudaRuntime(allow_brace_init=True)
        self.rt.load_binary(build_pywrap_library())
        self.dnn = Cudnn(self.rt)

    # ------------------------------------------------------------------
    def run(self, fetch: Node,
            feed: dict[Node, np.ndarray] | None = None) -> np.ndarray:
        feed = feed or {}
        cache: dict[int, tuple[DeviceTensor, tuple[int, ...]]] = {}
        tensor = self._evaluate(fetch, feed, cache)
        return tensor[0].numpy().reshape(tensor[1])

    # ------------------------------------------------------------------
    def _evaluate(self, node: Node, feed, cache):
        if node.node_id in cache:
            return cache[node.node_id]
        handler = getattr(self, f"_op_{node.op}", None)
        if handler is None:
            raise GraphError(f"unknown op {node.op!r}")
        inputs = [self._evaluate(child, feed, cache)
                  for child in node.inputs]
        result = handler(node, inputs, feed)
        cache[node.node_id] = result
        return result

    # -- op handlers -------------------------------------------------------
    def _op_placeholder(self, node, _inputs, feed):
        if node not in feed:
            raise GraphError(
                f"placeholder {node.attr_dict.get('name')!r} not fed")
        value = np.ascontiguousarray(feed[node], dtype=np.float32)
        want = tuple(node.attr_dict["shape"])
        if value.shape != want:
            raise GraphError(
                f"fed shape {value.shape} != declared {want}")
        return (DeviceTensor.from_numpy(self.rt, value), value.shape)

    def _op_constant(self, node, _inputs, _feed):
        attrs = node.attr_dict
        value = np.frombuffer(attrs["value"], dtype=np.float32).reshape(
            attrs["shape"])
        return (DeviceTensor.from_numpy(self.rt, value), value.shape)

    def _op_conv2d(self, node, inputs, _feed):
        (x, x_shape), (w, w_shape) = inputs
        attrs = node.attr_dict
        conv = ConvolutionDescriptor(
            pad_h=attrs["padding"], pad_w=attrs["padding"],
            stride_h=attrs["stride"], stride_w=attrs["stride"])
        y_desc, y_ptr = self.dnn.convolution_forward(
            TensorDescriptor(*x_shape), x.ptr,
            FilterDescriptor(*w_shape), w.ptr, conv,
            ConvFwdAlgo(attrs["algo"]))
        return (DeviceTensor(self.rt, y_desc.dims, ptr=y_ptr),
                y_desc.dims)

    def _op_bias_add(self, _node, inputs, _feed):
        (x, x_shape), (bias, _bias_shape) = inputs
        self.dnn.add_bias(TensorDescriptor(*x_shape), x.ptr, bias.ptr)
        return (x, x_shape)

    def _op_relu(self, _node, inputs, _feed):
        (x, shape) = inputs[0]
        y = DeviceTensor(self.rt, shape)
        self.dnn.activation_forward(ActivationDescriptor("relu"),
                                    x.ptr, y.ptr, x.size)
        return (y, shape)

    def _op_tanh(self, _node, inputs, _feed):
        (x, shape) = inputs[0]
        y = DeviceTensor(self.rt, shape)
        self.dnn.activation_forward(ActivationDescriptor("tanh"),
                                    x.ptr, y.ptr, x.size)
        return (y, shape)

    def _op_max_pool(self, node, inputs, _feed):
        (x, shape) = inputs[0]
        attrs = node.attr_dict
        pool = PoolingDescriptor(mode="max", window=attrs["window"],
                                 stride=attrs["stride"])
        x_desc = TensorDescriptor(*shape)
        y_desc = pool.output_dims(x_desc)
        y = DeviceTensor(self.rt, y_desc.dims)
        self.dnn.pooling_forward(pool, x_desc, x.ptr, y.ptr)
        return (y, y_desc.dims)

    def _op_flatten(self, _node, inputs, _feed):
        (x, shape) = inputs[0]
        n = shape[0]
        flat = (n, int(np.prod(shape[1:])))
        return (x.view(flat), flat)

    def _op_dense(self, _node, inputs, _feed):
        (x, x_shape), (w, w_shape) = inputs[0], inputs[1]
        n, in_features = x_shape
        in_w, out_features = w_shape
        if in_features != in_w:
            raise GraphError(
                f"dense shape mismatch: {x_shape} @ {w_shape}")
        y = DeviceTensor(self.rt, (n, out_features))
        self.dnn.sgemm(x.ptr, w.ptr, y.ptr, n, out_features, in_features)
        if len(inputs) == 3:
            bias = inputs[2][0]
            self.dnn.add_bias(TensorDescriptor(n, out_features, 1, 1),
                              y.ptr, bias.ptr)
        return (y, (n, out_features))

    def _op_softmax(self, _node, inputs, _feed):
        (x, shape) = inputs[0]
        rows, cols = shape
        y = DeviceTensor(self.rt, shape)
        self.dnn.softmax_forward(x.ptr, y.ptr, rows, cols)
        return (y, shape)

    def _op_scale_and_shift(self, _node, inputs, _feed):
        (x, shape) = inputs[0]
        y = DeviceTensor(self.rt, shape)
        total = x.size
        self.rt.launch("tf_scale_and_shift",
                       ((total + 127) // 128, 1, 1), (128, 1, 1),
                       [x.ptr, y.ptr, total])
        return (y, shape)
