"""Exception hierarchy for the repro GPU simulator.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch simulator faults without masking genuine Python bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all simulator errors."""


class PTXSyntaxError(ReproError):
    """Raised when PTX text cannot be lexed or parsed."""

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class PTXLabelError(PTXSyntaxError):
    """Raised for duplicate label definitions or branches to undefined
    labels, at parse/build time rather than as a ``KeyError`` mid-run."""


class PTXNameError(ReproError):
    """Raised for duplicate or missing symbol names in a PTX module.

    The paper's fix (2) — extracting each embedded PTX file separately —
    exists precisely because cuDNN's combined PTX triggers this error.
    """


class UnsupportedInstructionError(ReproError):
    """Raised when the functional simulator meets an unimplemented opcode."""


class SimulationFault(ReproError):
    """Raised for illegal runtime behaviour (bad address, misalignment...)."""


class CudaError(ReproError):
    """Raised by the CUDA runtime/driver API layer (invalid handles etc.)."""


class CudnnError(ReproError):
    """Raised by the cuDNN-compatible library layer."""


class TimingDeadlockError(ReproError):
    """Raised when the performance model makes no progress.

    The paper fixed bugs "in the memory model and in GPUWattch code that
    caused cuDNN enabled programs to deadlock GPGPU-Sim's timing model";
    we surface the condition instead of hanging.
    """


class CycleBudgetExceededError(ReproError):
    """Raised when a kernel exceeds the configured ``max_cycles`` budget.

    Deliberately *not* a :class:`TimingDeadlockError`: a budget overrun
    means the simulation was still progressing when the wall was hit,
    while a deadlock means no progress was possible at all.  The fault
    campaign relies on the distinction — an injected dropped memory
    response must surface as a genuine deadlock, never as a slow run.
    """


class FaultInjectionError(ReproError):
    """Raised for malformed fault specs or unusable injection sites."""


class CheckpointError(ReproError):
    """Raised on malformed or incompatible checkpoint data."""


class ServiceError(ReproError):
    """Raised by the simulation service layer (:mod:`repro.service`):
    unknown workloads, unknown job ids, shard-merge failures, or a
    client asking for the result of a job that failed."""


class JobCancelled(ServiceError):
    """Raised inside a running job when its cancellation (or deadline
    expiry) is observed at a shard boundary.

    The cluster scheduler's cancellation contract is cooperative:
    queued jobs cancel instantly, running jobs raise this from their
    :class:`repro.service.jobs.JobControl` at the next kernel-launch /
    shard-merge boundary, unwinding the workload cleanly.  The message
    says whether the cause was an explicit cancel or a deadline."""


class VerificationError(ReproError):
    """Raised by the ``FunctionalEngine(verify=True)`` launch gate when
    the static verifier reports error-severity findings.

    ``findings`` holds the :class:`repro.analysis.Finding` objects so
    callers can inspect rule ids programmatically.
    """

    def __init__(self, message: str, findings: list | None = None) -> None:
        super().__init__(message)
        self.findings = list(findings or [])
