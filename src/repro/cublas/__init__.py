"""A thin cuBLAS-style handle over the GEMM kernel family.

The deep-learning stack calls these through :class:`repro.cudnn.Cudnn`;
this standalone handle exists for applications that only need BLAS (and
mirrors how cuBLAS is a separate dynamically linked library).
"""

from __future__ import annotations

from repro.cuda.runtime import CudaRuntime


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


class Cublas:
    """cublasHandle_t equivalent."""

    def __init__(self, runtime: CudaRuntime) -> None:
        self.rt = runtime

    def sgemm(self, a: int, b: int, c: int, m: int, n: int, k: int,
              alpha: float = 1.0, beta: float = 0.0) -> None:
        """C[m,n] = alpha * A[m,k] @ B[k,n] + beta * C (row-major)."""
        self.rt.launch("sgemm_tiled_16x16",
                       (_ceil_div(n, 16), _ceil_div(m, 16), 1),
                       (16, 16, 1),
                       [a, b, c, m, n, k, alpha, beta, 0, 0, 0])

    def sgemv_t(self, a: int, x: int, y: int, rows: int, cols: int,
                alpha: float = 1.0, beta: float = 0.0) -> None:
        """y[cols] = alpha * A[rows,cols]^T @ x[rows] + beta * y."""
        self.rt.launch("gemv2T_kernel_val",
                       (_ceil_div(cols, 128), 1, 1), (128, 1, 1),
                       [a, x, y, rows, cols, alpha, beta])

    def saxpy(self, x: int, y: int, alpha: float, count: int) -> None:
        """y += alpha * x."""
        self.rt.launch("cublas_saxpy",
                       (_ceil_div(count, 128), 1, 1), (128, 1, 1),
                       [x, y, alpha, count])

    def sscal(self, x: int, alpha: float, count: int) -> None:
        """x *= alpha (through the duplicated ``scale_array`` symbol)."""
        self.rt.launch("scale_array",
                       (_ceil_div(count, 128), 1, 1), (128, 1, 1),
                       [x, x, alpha, count])
