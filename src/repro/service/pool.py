"""Parallel CTA fan-out: one launch, many worker processes.

Functional mode executes CTAs independently (the property the paper's
checkpointing already relies on), so a launch's CTA range can be
partitioned into contiguous shards and farmed out to a process pool:

1. the parent snapshots everything a shard needs — the kernel AST
   (stripped of unpicklable compiled-tier caches), param/const blocks,
   the global-memory image, quirks — into a :class:`ShardTask`;
2. each worker rebuilds a :class:`LaunchContext`, runs its CTA range
   through the ordinary :class:`FunctionalEngine` tiers, and reports a
   :class:`ShardResult`: byte-exact global-memory *write* runs (diffed
   against the incoming image), merged-ready :class:`RunStats` counts,
   optional per-CTA register state in the checkpoint layer's
   :class:`~repro.checkpoint.state.CTASnapshot` format, and optional
   trace events;
3. the parent applies write runs in ascending shard order (ascending
   CTA order — the order the single-process engine runs them in), sums
   the counters, and merges worker trace events onto per-shard tracks.

The merge is bit-identical to a single-process run for kernels whose
CTAs do not write the same byte with *different* values (racy kernels
have no deterministic single-process answer either); instruction and
per-opcode counts are exact sums and always match.

Workers re-apply the parent's kernel-cache environment at task start
(:func:`repro.functional.kernelcache.apply_env_config`), so long-lived
pool workers honour ``REPRO_CACHE_DIR``/``REPRO_CACHE_DISABLE`` changes
made in the parent after the pool was forked.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field

import numpy as np

from repro.checkpoint.state import CTASnapshot, capture_cta
from repro.errors import ServiceError
from repro.functional import kernelcache
from repro.functional.executor import (
    FunctionalEngine, RunStats, partition_ctas)
from repro.functional.memory import (
    PAGE_SIZE, CudaArray, GlobalMemory, LinearMemory)
from repro.functional.state import CTAState, LaunchContext
from repro.ptx.ast import Kernel
from repro.quirks import FIXED, LegacyQuirks
from repro.trace.tracer import NULL_TRACER, TraceEvent, shard_tid

#: Fallback worker count when none is requested.
DEFAULT_SHARDS = max(1, min(8, os.cpu_count() or 1))


def _transport_kernel(kernel: Kernel) -> Kernel:
    """A picklable copy of *kernel*.

    The live object accumulates compiled-tier caches (``_fastpath``
    closures, superblocks, megablock plans) and a backref to its whole
    module; none of those survive a pickle, and workers recompile their
    own tiers anyway (warm, via the disk kernel cache).  The
    reconvergence map *is* carried over so workers skip the CFG pass.
    """
    clean = Kernel(
        name=kernel.name,
        params=list(kernel.params),
        body=list(kernel.body),
        labels=dict(kernel.labels),
        shared_vars=list(kernel.shared_vars),
        local_vars=list(kernel.local_vars),
        reg_decls=dict(kernel.reg_decls),
        module=None,
        reconvergence=dict(kernel.reconvergence),
    )
    return clean


@dataclass
class ShardTask:
    """Everything one worker needs to run a contiguous CTA range."""

    kernel: Kernel
    grid_dim: tuple[int, int, int]
    block_dim: tuple[int, int, int]
    param_bytes: bytes
    const_bytes: bytes
    module_symbols: dict[str, tuple[str, int]]
    textures: dict[str, tuple[int, int, bytes]]
    quirks: LegacyQuirks
    memory: dict
    first_cta: int
    limit_cta: int
    fast_mode: str = "superblock"
    capture_registers: bool = False
    trace: bool = False
    clock: int = 0
    #: Arm a shard-local sanitizer; findings ride back on the result.
    sanitize: bool = False
    #: Parent shadow-memory snapshot (initialized-byte maps), so the
    #: shard knows which bytes the host wrote before the launch.
    shadow: dict | None = None
    #: Parent uninitialised-read policy (poison while sanitizing).
    uninit_read: str = "zeros"
    #: Parent-process cache env, re-applied at task start (workers must
    #: not trust the environment they inherited at fork).
    cache_env: dict = field(default_factory=dict)


@dataclass
class ShardResult:
    """What one worker sends back for its CTA range."""

    first_cta: int
    limit_cta: int
    instructions: int
    warps_launched: int
    ctas_launched: int
    per_opcode: dict[str, int]
    clock_delta: int
    #: Byte-exact runs the shard wrote: ``(absolute addr, payload)``.
    writes: list[tuple[int, bytes]]
    snapshots: list[CTASnapshot] = field(default_factory=list)
    events: list[TraceEvent] = field(default_factory=list)
    cache_counters: dict = field(default_factory=dict)
    pid: int = 0
    #: Shard-local sanitizer findings (``sanitize`` tasks only).
    findings: list = field(default_factory=list)
    san_counters: dict = field(default_factory=dict)


@dataclass
class ShardedRunResult:
    """The merged outcome of one fanned-out launch."""

    stats: RunStats
    shard_ranges: list[tuple[int, int]]
    #: cta_linear -> final-state snapshot (``capture_registers`` only).
    snapshots: dict[int, CTASnapshot] = field(default_factory=dict)
    worker_pids: list[int] = field(default_factory=list)
    #: Deterministically merged sanitizer findings across shards.
    findings: list = field(default_factory=list)
    san_counters: dict = field(default_factory=dict)


def _diff_writes(old: bytes, new: bytes, base_addr: int,
                 out: list[tuple[int, bytes]]) -> None:
    """Append the exact byte runs where *new* differs from *old*.

    Runs are exact — no gap coalescing.  An unchanged byte inside a gap
    still holds the *initial* value, and blindly rewriting it in the
    parent would clobber another shard's write to the same location.
    """
    a = np.frombuffer(old, dtype=np.uint8)
    b = np.frombuffer(new, dtype=np.uint8)
    changed = np.flatnonzero(a != b)
    if changed.size == 0:
        return
    breaks = np.flatnonzero(np.diff(changed) > 1)
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks, [changed.size - 1]))
    for s, e in zip(starts, ends):
        lo = int(changed[s])
        hi = int(changed[e]) + 1
        out.append((base_addr + lo, new[lo:hi]))


def _execute_shard(task: ShardTask) -> ShardResult:
    """Worker entry point: run CTAs ``[first_cta, limit_cta)``."""
    kernelcache.apply_env_config(task.cache_env)
    kernelcache.reset_counters()
    # One thread pool per shard process would oversubscribe the host
    # (shards x chunk workers); the process fan-out IS the parallelism
    # here, so megablock chunks run sequentially inside each worker.
    os.environ["REPRO_MEGABLOCK_WORKERS"] = "1"
    global_mem = GlobalMemory(uninit_read=task.uninit_read)
    global_mem.restore(task.memory)
    sanitizer = None
    if task.sanitize:
        from repro.sanitize.core import Sanitizer
        from repro.sanitize.shadow import attach_shadow
        shadow = attach_shadow(global_mem)
        if task.shadow is not None:
            shadow.restore(task.shadow)
        sanitizer = Sanitizer()
    param_mem = LinearMemory(len(task.param_bytes))
    param_mem.data[:] = task.param_bytes
    const_mem = LinearMemory(len(task.const_bytes))
    const_mem.data[:] = task.const_bytes
    textures = {}
    for name, (width, height, raw) in task.textures.items():
        array = CudaArray(width, height)
        array.upload(raw)
        textures[name] = array
    launch = LaunchContext(
        kernel=task.kernel, grid_dim=task.grid_dim,
        block_dim=task.block_dim, global_mem=global_mem,
        param_mem=param_mem, const_mem=const_mem,
        module_symbols=task.module_symbols, textures=textures,
        quirks=task.quirks, clock=task.clock)

    tracer = NULL_TRACER
    if task.trace:
        from repro.trace.tracer import Tracer
        tracer = Tracer(process_name=f"shard-{task.first_cta}",
                        cta_spans=True)
        tracer.begin(f"shard ctas {task.first_cta}..{task.limit_cta - 1}",
                     cat="shard")
    engine = FunctionalEngine(launch, fast_mode=task.fast_mode,
                              sanitize=sanitizer, tracer=tracer)
    stats = RunStats()
    snapshots: list[CTASnapshot] = []
    if task.capture_registers:
        # Per-lane register files only exist on the scalar path; drive
        # CTAs one by one and snapshot each in the checkpoint format.
        for cta_linear in range(task.first_cta, task.limit_cta):
            cta = CTAState(launch, cta_linear)
            stats.ctas_launched += 1
            stats.warps_launched += len(cta.warps)
            engine.run_cta(cta, stats)
            snapshots.append(capture_cta(cta))
    else:
        engine.run_range(task.first_cta, task.limit_cta, stats)

    writes: list[tuple[int, bytes]] = []
    initial_pages = task.memory["pages"]
    zero_page = bytes(PAGE_SIZE)
    for page_id, page in sorted(global_mem.iter_pages()):
        old = initial_pages.get(page_id, zero_page)
        new = bytes(page)
        if old != new:
            _diff_writes(old, new, page_id * PAGE_SIZE, writes)

    events: list[TraceEvent] = []
    if task.trace:
        tracer.finish()
        events = list(tracer.events)
    return ShardResult(
        first_cta=task.first_cta, limit_cta=task.limit_cta,
        instructions=stats.instructions,
        warps_launched=stats.warps_launched,
        ctas_launched=stats.ctas_launched,
        per_opcode=dict(stats.dynamic_per_opcode),
        clock_delta=launch.clock - task.clock,
        writes=writes, snapshots=snapshots, events=events,
        cache_counters=kernelcache.counters(), pid=os.getpid(),
        findings=(sanitizer.findings_list()
                  if sanitizer is not None else []),
        san_counters=(dict(sanitizer.counters)
                      if sanitizer is not None else {}))


class ShardExecutor:
    """Owns a worker pool and fans launches across it.

    The pool is created lazily and reused across launches, so a
    multi-kernel workload (LeNet forward is ~a dozen launches) pays the
    fork cost once.  Use as a context manager, or call :meth:`close`.
    """

    def __init__(self, shards: int | None = None, *,
                 fast_mode: str = "superblock",
                 capture_registers: bool = False,
                 trace: bool = False,
                 sanitize: bool = False,
                 mp_context: str | None = None) -> None:
        self.shards = shards or DEFAULT_SHARDS
        self.fast_mode = fast_mode
        self.capture_registers = capture_registers
        self.trace = trace
        self.sanitize = sanitize
        self._ctx_name = mp_context
        self._pool = None

    # -- pool lifecycle -------------------------------------------------
    def _context(self):
        if self._ctx_name is not None:
            return multiprocessing.get_context(self._ctx_name)
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")

    def _get_pool(self):
        if self._pool is None:
            self._pool = self._context().Pool(processes=self.shards)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- execution ------------------------------------------------------
    def execute(self, launch: LaunchContext, *,
                shards: int | None = None,
                tracer=None) -> ShardedRunResult:
        """Fan *launch* out, merge, and mutate *launch* in place (global
        memory, clock) exactly as a single-process run would."""
        shards = shards or self.shards
        ranges = partition_ctas(launch.num_ctas, shards)
        if not ranges:
            return ShardedRunResult(stats=RunStats(), shard_ranges=[])
        kernel = _transport_kernel(launch.kernel)
        if not kernel.reconvergence:
            # Resolve reconvergence once in the parent so every worker
            # skips the CFG pass (mirrors the warm kernel-cache path).
            from repro.functional.cfg import prepare_kernel
            if any(i.opcode == "bra" and i.pred is not None
                   for i in kernel.body):
                prepare_kernel(kernel)
                launch.kernel.reconvergence = dict(kernel.reconvergence)
        memory = launch.global_mem.snapshot()
        textures = self._snapshot_textures(launch)
        cache_env = kernelcache.env_config()
        shadow_state = None
        if self.sanitize and launch.global_mem.shadow is not None:
            shadow_state = launch.global_mem.shadow.snapshot()
        tasks = [ShardTask(
            kernel=kernel, grid_dim=launch.grid_dim,
            block_dim=launch.block_dim,
            param_bytes=bytes(launch.param_mem.data),
            const_bytes=bytes(launch.const_mem.data),
            module_symbols=dict(launch.module_symbols),
            textures=textures, quirks=launch.quirks, memory=memory,
            first_cta=first, limit_cta=limit,
            fast_mode=self.fast_mode,
            capture_registers=self.capture_registers,
            trace=self.trace, clock=launch.clock,
            cache_env=cache_env,
            sanitize=self.sanitize, shadow=shadow_state,
            uninit_read=launch.global_mem.uninit_read,
        ) for first, limit in ranges]
        results = self._get_pool().map(_execute_shard, tasks)
        return self._merge(launch, ranges, results, tracer)

    @staticmethod
    def _snapshot_textures(launch: LaunchContext
                           ) -> dict[str, tuple[int, int, bytes]]:
        """Serialize the cudaArrays this kernel's tex instructions name.

        ``launch.textures`` may be a plain dict or the runtime's
        late-binding :class:`~repro.cuda.textures.TextureView`; both
        resolve by name through ``.get``, so the picklable snapshot is
        driven off the texture symbols the kernel body references.
        """
        bindings = launch.textures
        if bindings is None:
            return {}
        snapshot: dict[str, tuple[int, int, bytes]] = {}
        for inst in launch.kernel.body:
            if inst.opcode != "tex":
                continue
            mem = inst.operands[1]
            if mem.name in snapshot:
                continue
            array = bindings.get(mem.name)
            if array is not None:
                snapshot[mem.name] = (array.width, array.height,
                                      array.download())
        return snapshot

    def _merge(self, launch: LaunchContext,
               ranges: list[tuple[int, int]],
               results: list[ShardResult],
               tracer) -> ShardedRunResult:
        results.sort(key=lambda r: r.first_cta)
        covered = [(r.first_cta, r.limit_cta) for r in results]
        if covered != sorted(ranges):
            raise ServiceError(
                f"shard merge: workers covered {covered}, "
                f"expected {sorted(ranges)}")
        stats = RunStats()
        merged = ShardedRunResult(stats=stats, shard_ranges=covered)
        global_mem = launch.global_mem
        if tracer is None:
            tracer = NULL_TRACER
        base_ts = tracer.clock.now if tracer.enabled else 0.0
        for index, result in enumerate(results):
            shard = RunStats(
                instructions=result.instructions,
                warps_launched=result.warps_launched,
                ctas_launched=result.ctas_launched,
                dynamic_per_opcode=result.per_opcode)
            stats.merge(shard)
            launch.clock += result.clock_delta
            # Ascending shard order == ascending CTA order: on the rare
            # overlapping write, the later CTA wins, as it would have
            # in the single-process loop.
            for addr, payload in result.writes:
                global_mem.write(addr, payload)
            for snapshot in result.snapshots:
                merged.snapshots[snapshot.cta_linear] = snapshot
            merged.worker_pids.append(result.pid)
            if tracer.enabled and result.events:
                first, limit = covered[index]
                tracer.ingest(
                    result.events, tid=shard_tid(index),
                    track_name=f"shard {index} (ctas {first}..{limit - 1})",
                    ts_offset=base_ts)
        if self.sanitize:
            # Ascending shard order makes the merge deterministic: the
            # lowest-CTA shard's message represents each finding key.
            from repro.sanitize.core import Sanitizer
            merged.findings = Sanitizer.merge_findings(
                result.findings for result in results)
            for result in results:
                for key, value in result.san_counters.items():
                    merged.san_counters[key] = (
                        merged.san_counters.get(key, 0) + value)
        return merged


class ShardedFunctionalBackend:
    """A :class:`~repro.cuda.runtime.CudaRuntime` backend that fans
    every launch across a :class:`ShardExecutor` worker pool.

    Drop-in for :class:`~repro.cuda.runtime.FunctionalBackend`: the
    whole workload (LeNet forward, conv_sample, ...) runs unchanged,
    each kernel launch transparently sharded.  Tiny grids are not worth
    a round-trip through the pool, so launches with fewer CTAs than
    ``inline_below`` run in-process instead.
    """

    name = "sharded-functional"

    def __init__(self, shards: int | None = None, *,
                 fast_mode: str = "superblock",
                 inline_below: int = 0,
                 trace_shards: bool = False,
                 sanitize=None) -> None:
        #: Parent-side sanitizer: runs inline launches directly and
        #: accumulates shard-merged findings from fanned-out ones, so
        #: ``backend.sanitize.findings_list()`` reads the same either
        #: way (mirrors FunctionalBackend.sanitize).
        if sanitize is True:
            from repro.sanitize.core import Sanitizer
            sanitize = Sanitizer()
        self.sanitize = sanitize or None
        self.executor = ShardExecutor(shards, fast_mode=fast_mode,
                                      trace=trace_shards,
                                      sanitize=sanitize is not None)
        self.fast_mode = fast_mode
        self.inline_below = inline_below
        #: Set by the owning CudaRuntime when tracing is on.
        self.tracer = NULL_TRACER
        #: (kernel name, shard count) per fanned-out launch, for tests
        #: and the service stats endpoint.
        self.fanouts: list[tuple[str, int]] = []

    def execute(self, launch: LaunchContext):
        from repro.cuda.runtime import KernelRunResult
        tracer = self.tracer
        if launch.num_ctas < max(self.inline_below, 1):
            engine = FunctionalEngine(launch, fast_mode=self.fast_mode,
                                      sanitize=self.sanitize,
                                      tracer=tracer)
            stats = engine.run()
        else:
            result = self.executor.execute(launch, tracer=tracer)
            stats = result.stats
            self.fanouts.append(
                (launch.kernel.name, len(result.shard_ranges)))
            if self.sanitize is not None:
                # Fold the shard-merged findings into the parent-side
                # sanitizer through its normal dedup funnel.
                sanitizer = self.sanitize
                sanitizer.kernels.setdefault(launch.kernel.name,
                                             launch.kernel)
                for entry in result.findings:
                    sanitizer.record(
                        entry["rule"], entry["kernel"], entry["pc"],
                        entry["message"], count=entry["count"])
                for key, value in result.san_counters.items():
                    if key == "findings":
                        continue  # record() above already counted them
                    sanitizer.counters[key] = (
                        sanitizer.counters.get(key, 0) + value)
        if tracer.enabled:
            tracer.complete(
                f"sharded:{launch.kernel.name}",
                ts=tracer.clock.now, dur=float(stats.instructions),
                cat="engine",
                args={"tier": self.fast_mode,
                      "shards": (self.fanouts[-1][1]
                                 if self.fanouts else 1),
                      "instructions": stats.instructions})
        return KernelRunResult(
            instructions=stats.instructions, cycles=0,
            stats={"per_opcode": stats.dynamic_per_opcode})

    def close(self) -> None:
        self.executor.close()
