"""Per-job runtime estimation for cost-aware scheduling.

The shortest-job-first policy needs one number per pending job: *how
long will this take?*  This module provides the pluggable hook and its
default implementation:

* :class:`CostModel` — the interface.  ``estimate`` returns predicted
  wall seconds for a ``(workload, config, seed)`` triple; ``observe``
  feeds a measured runtime back after a job completes.
* :class:`HistoryCostModel` — the default: an exponential moving
  average of measured runtimes keyed on the job's **structural
  fingerprint** (:func:`cost_key` — the workload plus its config, seed
  excluded, since the seed changes the data but not the amount of
  work).  Unseen fingerprints fall back to the per-workload mean, then
  the global mean, then a fixed prior, so the model always answers.

SimNet (see PAPERS.md) motivates the shape of this hook: a learned
predictor over features the trace layer already emits (instruction
mix, memory footprint, divergence counters) can subclass
:class:`CostModel` and drop into the scheduler unchanged — the policy
only ever calls ``estimate``/``observe``.
"""

from __future__ import annotations

import hashlib
import json
import threading


def cost_key(workload: str, config: dict | None) -> str:
    """Structural fingerprint of the *work* a job represents.

    Like :func:`repro.service.jobs.job_key` but with the seed excluded:
    two submissions that differ only in their random seed execute the
    same kernels over the same shapes, so they belong to one runtime
    history bucket.
    """
    canonical = json.dumps({"workload": workload, "config": config or {}},
                           sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class CostModel:
    """Interface the scheduler's cost-aware policies consume.

    Implementations must be thread-safe: the scheduler calls
    ``estimate`` from every GPU worker thread while selecting work and
    ``observe`` from the worker that just finished a job.
    """

    def estimate(self, workload: str, config: dict | None,
                 seed: int) -> float:
        """Predicted runtime in wall seconds (always answers)."""
        raise NotImplementedError

    def observe(self, workload: str, config: dict | None, seed: int,
                runtime_s: float) -> None:
        """Feed back one measured runtime after a job completes."""
        raise NotImplementedError

    def snapshot(self) -> dict:
        """JSON-able summary for ``/api/cluster/stats`` (override)."""
        return {"kind": type(self).__name__}


class HistoryCostModel(CostModel):
    """Structural-fingerprint history of measured runtimes (the default).

    Keeps an exponential moving average per :func:`cost_key` so drift
    (a warming kernel cache, a loaded host) tracks recent reality
    rather than the first sample forever.  The fallback chain for a
    fingerprint with no history is per-workload mean -> global mean ->
    ``default_estimate``, which makes shortest-job-first behave like
    FIFO until the first few observations arrive and sharpen it.
    """

    def __init__(self, *, alpha: float = 0.4,
                 default_estimate: float = 1.0) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.default_estimate = default_estimate
        self._lock = threading.Lock()
        #: cost_key -> (ema_seconds, samples)
        self._history: dict[str, tuple[float, int]] = {}
        #: workload -> (sum_seconds, samples) for the fallback mean.
        self._by_workload: dict[str, tuple[float, int]] = {}

    def estimate(self, workload: str, config: dict | None,
                 seed: int) -> float:
        """EMA for the exact fingerprint, else the fallback chain."""
        key = cost_key(workload, config)
        with self._lock:
            entry = self._history.get(key)
            if entry is not None:
                return entry[0]
            by_workload = self._by_workload.get(workload)
            if by_workload is not None and by_workload[1] > 0:
                return by_workload[0] / by_workload[1]
            total = sum(s for s, _ in self._by_workload.values())
            count = sum(n for _, n in self._by_workload.values())
            if count > 0:
                return total / count
        return self.default_estimate

    def observe(self, workload: str, config: dict | None, seed: int,
                runtime_s: float) -> None:
        """Fold one measured runtime into the EMA and the means."""
        key = cost_key(workload, config)
        runtime_s = max(float(runtime_s), 0.0)
        with self._lock:
            entry = self._history.get(key)
            if entry is None:
                self._history[key] = (runtime_s, 1)
            else:
                ema, samples = entry
                self._history[key] = (
                    self.alpha * runtime_s + (1.0 - self.alpha) * ema,
                    samples + 1)
            total, count = self._by_workload.get(workload, (0.0, 0))
            self._by_workload[workload] = (total + runtime_s, count + 1)

    def snapshot(self) -> dict:
        """Fingerprint count plus per-workload mean runtimes."""
        with self._lock:
            return {
                "kind": "HistoryCostModel",
                "fingerprints": len(self._history),
                "observations": sum(n for _, n
                                    in self._by_workload.values()),
                "mean_runtime_s": {
                    workload: round(total / count, 6)
                    for workload, (total, count)
                    in sorted(self._by_workload.items()) if count},
            }
