"""Cluster scheduler: N simulated GPUs over a prioritised job queue.

PR 6's :class:`~repro.service.jobs.JobQueue` is a thread pool with a
memo table — enough for a handful of jobs, blind to everything the
paper's sweep workflow actually needs (Figs. 6/7 and the Sec. 5 sweeps
each run dozens of configurations; a production sweep runs thousands).
This module is the driver layer on top: a :class:`ClusterScheduler`
multiplexes queued jobs across **N simulated GPU workers** (each worker
is one execution lane; a job on it may itself fan CTAs across the
PR 6 shard pool), with

* **pluggable allocation policies** behind one :class:`Policy`
  interface — :class:`FifoPolicy`, :class:`PriorityPolicy` (strict),
  :class:`FairSharePolicy` (round-robin across tenants) and
  :class:`SjfPolicy` (cost-aware shortest-job-first fed by a
  :class:`~repro.service.costmodel.CostModel`);
* **job priorities, deadlines and cancellation** — queued jobs cancel
  instantly, running jobs cancel cooperatively at shard boundaries via
  :class:`~repro.service.jobs.JobControl`;
* **streaming progress events** per job
  (``queued`` → ``assigned`` → ``shard-progress``\\ * → terminal),
  long-pollable over ``GET /api/jobs/<id>/events``;
* a **persistent memo table** (:class:`~repro.service.jobs.MemoTable`
  under ``$REPRO_CACHE_DIR``) so a sweep survives a service restart;
* **observability**: per-GPU tracks (:func:`repro.trace.tracer.gpu_tid`)
  carrying one slice per executed job plus a ``cluster queue depth``
  counter series, and ``/api/cluster/stats`` for the REST view.

Selection is serialized under the scheduler lock: whenever a GPU
worker goes idle it asks the policy to pick from the pending list, so
a policy is just a pure choice function over queued jobs and never
deals with races itself.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import traceback as traceback_module
from dataclasses import dataclass, field

from repro.errors import JobCancelled, ServiceError
from repro.functional import kernelcache
from repro.service.costmodel import CostModel, HistoryCostModel
from repro.service.jobs import (
    CANCELLED, DONE, ERROR, RUNNING, REGISTRY, Job, JobControl,
    MemoTable, job_key)
from repro.trace.tracer import NULL_TRACER, gpu_tid

#: File name of the persisted memo table inside the repro cache dir.
MEMO_FILENAME = "service_memo.json"


def default_memo_path() -> str:
    """Where the scheduler persists its memo table by default.

    Lives next to the kernel-plan cache (``$REPRO_CACHE_DIR``, else
    ``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``) so one
    environment variable relocates all service state at once.
    """
    return os.path.join(kernelcache.cache_dir(), MEMO_FILENAME)


# ---------------------------------------------------------------------------
# Allocation policies
# ---------------------------------------------------------------------------
class Policy:
    """Chooses which pending job an idle GPU runs next.

    ``select`` is called under the scheduler lock with a non-empty
    *pending* list (submission order) and the current wall time; it
    must return one element of the list and may keep internal state
    (the fair-share rotation does).  It must not mutate the list.
    """

    #: Registry name (the ``repro-serve --policy`` value).
    name = "policy"

    def select(self, pending: list[Job], now: float) -> Job:
        """Return the pending job to run next."""
        raise NotImplementedError


class FifoPolicy(Policy):
    """First submitted, first served — the baseline."""

    name = "fifo"

    def select(self, pending: list[Job], now: float) -> Job:
        """The oldest pending job (the list is in submission order)."""
        return pending[0]


class PriorityPolicy(Policy):
    """Strict priority: highest ``priority`` first, FIFO within a tier.

    A steady stream of high-priority work can starve low-priority jobs
    indefinitely — that is the documented contract of *strict*
    priority; use :class:`FairSharePolicy` when starvation matters.
    """

    name = "priority"

    def select(self, pending: list[Job], now: float) -> Job:
        """Max priority, ties broken by submission order."""
        return min(pending,
                   key=lambda job: (-job.priority, job.submitted_at,
                                    job.job_id))


class FairSharePolicy(Policy):
    """Round-robin fair share across tenants.

    Jobs are grouped by ``job.tenant`` (defaulting to the workload
    name), and grant turns rotate through the groups that currently
    have pending work; within a group, FIFO.  A tenant flooding the
    queue with a thousand jobs therefore delays other tenants by at
    most one job per scheduling turn.
    """

    name = "fair"

    def __init__(self) -> None:
        self._last_group: str | None = None

    @staticmethod
    def group_of(job: Job) -> str:
        """The fair-share bucket a job charges its turn to."""
        return job.tenant or job.workload

    def select(self, pending: list[Job], now: float) -> Job:
        """The earliest job of the next group after the last served."""
        groups: list[str] = []
        for job in pending:
            group = self.group_of(job)
            if group not in groups:
                groups.append(group)
        if self._last_group in groups:
            start = groups.index(self._last_group) + 1
            groups = groups[start:] + groups[:start]
        chosen_group = groups[0]
        self._last_group = chosen_group
        for job in pending:
            if self.group_of(job) == chosen_group:
                return job
        raise AssertionError("unreachable: group vanished mid-select")


class SjfPolicy(Policy):
    """Cost-aware shortest-job-first.

    Asks the :class:`~repro.service.costmodel.CostModel` for a runtime
    estimate per pending job and runs the cheapest next — the classic
    mean-wait-time minimiser for batch sweeps.  With the default
    :class:`~repro.service.costmodel.HistoryCostModel` the first few
    jobs of an unseen shape run in FIFO order until measurements
    arrive and the estimates sharpen.
    """

    name = "sjf"

    def __init__(self, cost_model: CostModel) -> None:
        self.cost_model = cost_model

    def select(self, pending: list[Job], now: float) -> Job:
        """Minimum estimated runtime, ties broken by submission."""
        return min(pending,
                   key=lambda job: (self.cost_model.estimate(
                       job.workload, job.config, job.seed),
                       job.submitted_at, job.job_id))


#: Policy name -> factory taking the scheduler's cost model.  The
#: REST CLI exposes exactly these names via ``repro-serve --policy``.
POLICIES = {
    "fifo": lambda cost_model: FifoPolicy(),
    "priority": lambda cost_model: PriorityPolicy(),
    "fair": lambda cost_model: FairSharePolicy(),
    "sjf": SjfPolicy,
}


def make_policy(name: str, cost_model: CostModel) -> Policy:
    """Instantiate a registered policy by name (:data:`POLICIES`)."""
    try:
        factory = POLICIES[name]
    except KeyError:
        raise ServiceError(
            f"unknown policy {name!r}; known: {sorted(POLICIES)}") \
            from None
    return factory(cost_model)


# ---------------------------------------------------------------------------
# The scheduler
# ---------------------------------------------------------------------------
@dataclass
class GpuState:
    """Book-keeping for one simulated GPU worker."""

    index: int
    #: Job currently executing on this GPU (``None`` when idle).
    job_id: str | None = None
    jobs_completed: int = 0
    jobs_cancelled: int = 0
    jobs_failed: int = 0
    busy_s: float = 0.0
    thread: threading.Thread | None = field(default=None, repr=False)

    def to_dict(self) -> dict:
        """JSON-able per-GPU row for ``/api/cluster/stats``."""
        return {
            "gpu": self.index,
            "state": "busy" if self.job_id else "idle",
            "job_id": self.job_id,
            "jobs_completed": self.jobs_completed,
            "jobs_cancelled": self.jobs_cancelled,
            "jobs_failed": self.jobs_failed,
            "busy_s": round(self.busy_s, 6),
        }


class ClusterScheduler:
    """Drives thousands of queued jobs across N simulated GPU workers.

    Observation API (``status``/``poll``/``result``/``jobs``/``stats``)
    matches :class:`~repro.service.jobs.JobQueue`, so the REST layer
    serves either; on top of it sit ``cancel``, ``events`` (long-poll)
    and ``cluster_stats``.  Construction starts the worker threads;
    call :meth:`shutdown` (or use as a context manager) to stop them.

    Memoization follows the queue's three instant outcomes — memo hit,
    coalesced onto a running leader, fresh — but the memo table is
    **persisted** (atomic JSON under the repro cache dir) unless
    ``memo_path=None``, so identical submissions after a restart are
    still instant hits.
    """

    def __init__(self, gpus: int = 2, policy: Policy | str = "fifo", *,
                 registry: dict | None = None,
                 cost_model: CostModel | None = None,
                 memo_path: str | None = "<default>",
                 tracer=None) -> None:
        if gpus < 1:
            raise ServiceError(f"need at least one GPU worker, got {gpus}")
        self.registry = dict(registry or REGISTRY)
        self.cost_model = cost_model or HistoryCostModel()
        if isinstance(policy, str):
            policy = make_policy(policy, self.cost_model)
        self.policy = policy
        if memo_path == "<default>":
            memo_path = default_memo_path()
        self.memo = MemoTable(memo_path)
        self.tracer = tracer or NULL_TRACER
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._pending: list[Job] = []
        self._leaders: dict[str, str] = {}      # key -> leader job_id
        self._followers: dict[str, list[str]] = {}
        self._seq = itertools.count(1)
        self._stopping = False
        self._t0 = time.perf_counter()
        self._counters = {
            "submitted": 0, "executed": 0, "memo_hits": 0,
            "coalesced": 0, "errors": 0, "cancelled": 0,
            "deadline_expired": 0}
        self.gpus = [GpuState(index) for index in range(gpus)]
        if self.tracer.enabled:
            for gpu in self.gpus:
                self.tracer.name_track(gpu_tid(gpu.index),
                                       f"gpu {gpu.index}")
        for gpu in self.gpus:
            thread = threading.Thread(
                target=self._worker_loop, args=(gpu,),
                name=f"repro-gpu-{gpu.index}", daemon=True)
            gpu.thread = thread
            thread.start()

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "ClusterScheduler":
        """``with ClusterScheduler(...) as sched:`` starts it running."""
        return self

    def __exit__(self, *exc) -> None:
        """Leaving the block shuts the workers down (waits for them)."""
        self.shutdown()

    # -- time & trace helpers -------------------------------------------
    def _ts(self) -> float:
        """Wall seconds since scheduler start (trace timestamp base)."""
        return time.perf_counter() - self._t0

    def _emit_queue_depth_locked(self) -> None:
        """Sample the queue-depth counter series (lock held)."""
        if self.tracer.enabled:
            self.tracer.counter("cluster queue depth",
                                len(self._pending), ts=self._ts())

    # -- submission -----------------------------------------------------
    def submit(self, workload: str, config: dict | None = None,
               seed: int = 0, *, priority: int = 0,
               deadline_s: float | None = None,
               tenant: str | None = None) -> Job:
        """Queue one job; returns immediately with its record.

        Same three instant outcomes as the plain queue (memo hit,
        coalesced, fresh) plus the scheduling attributes: *priority*
        (higher runs first under the ``priority`` policy), *deadline_s*
        (wall-second budget from submission — expiry cancels the job,
        queued or running), *tenant* (fair-share group; defaults to the
        workload name).
        """
        if workload not in self.registry:
            raise ServiceError(
                f"unknown workload {workload!r}; "
                f"known: {sorted(self.registry)}")
        if deadline_s is not None and deadline_s <= 0:
            raise ServiceError(
                f"deadline_s must be positive, got {deadline_s}")
        config = dict(config or {})
        key = job_key(workload, config, seed)
        with self._cond:
            job = Job(job_id=f"job-{next(self._seq):06d}", key=key,
                      workload=workload, config=config, seed=int(seed),
                      submitted_at=time.time(), priority=int(priority),
                      deadline_s=deadline_s, tenant=tenant)
            self._jobs[job.job_id] = job
            self._order.append(job.job_id)
            self._counters["submitted"] += 1
            cached = self.memo.get(key)
            if cached is not None:
                job.state = DONE
                job.memo_hit = True
                job.result = cached
                job.finished_at = time.time()
                self._counters["memo_hits"] += 1
                job.emit("queued")
                job.emit("done", memo_hit=True)
                job.done.set()
                return job
            leader = self._leaders.get(key)
            if leader is not None:
                job.memo_hit = True
                self._followers.setdefault(key, []).append(job.job_id)
                self._counters["coalesced"] += 1
                job.emit("queued", coalesced_with=leader)
                return job
            self._leaders[key] = job.job_id
            self._pending.append(job)
            job.emit("queued")
            self._emit_queue_depth_locked()
            self._cond.notify()
        return job

    # -- cancellation ---------------------------------------------------
    def cancel(self, job_id: str) -> dict:
        """Cancel a job: instant when queued, cooperative when running.

        A queued job is removed from the pending list and closed as
        ``cancelled`` on the spot (coalesced followers are promoted to
        a fresh leader).  A running job gets its ``cancel_requested``
        flag set and unwinds at the next shard boundary.  Cancelling a
        job that already finished is a no-op.  Returns the job record.
        """
        with self._cond:
            job = self._get(job_id)
            if job.terminal:
                return job.to_dict(with_result=False)
            if job in self._pending:
                self._pending.remove(job)
                self._close_cancelled_locked(job, "cancelled while queued")
                self._promote_followers_locked(job.key)
                self._emit_queue_depth_locked()
                return job.to_dict(with_result=False)
            if job.state == RUNNING:
                job.request_cancel()
                return job.to_dict(with_result=False)
            # A coalesced follower: detach it from its leader and close.
            followers = self._followers.get(job.key, [])
            if job_id in followers:
                followers.remove(job_id)
            self._close_cancelled_locked(job, "cancelled while queued")
            return job.to_dict(with_result=False)

    def _close_cancelled_locked(self, job: Job, reason: str) -> None:
        """Terminal bookkeeping for a cancellation (lock held)."""
        job.state = CANCELLED
        job.error = reason
        job.finished_at = time.time()
        if "deadline" in reason:
            self._counters["deadline_expired"] += 1
        self._counters["cancelled"] += 1
        job.emit("cancelled", reason=reason)
        job.done.set()

    def _promote_followers_locked(self, key: str) -> None:
        """Re-queue a dead leader's followers under a new leader.

        The first follower becomes the pending leader (keeping its own
        priority/deadline); the rest stay coalesced behind it.  Without
        this, cancelling a leader would strand followers forever.
        """
        self._leaders.pop(key, None)
        follower_ids = self._followers.pop(key, [])
        if not follower_ids:
            return
        new_leader = self._jobs[follower_ids[0]]
        new_leader.memo_hit = False
        self._leaders[key] = new_leader.job_id
        if len(follower_ids) > 1:
            self._followers[key] = follower_ids[1:]
        self._pending.append(new_leader)
        new_leader.emit("queued", promoted=True)
        self._cond.notify()

    def _expire_deadlines_locked(self) -> None:
        """Cancel queued jobs whose deadline has already passed."""
        now = time.time()
        expired = [job for job in self._pending
                   if job.deadline_s is not None
                   and now - job.submitted_at > job.deadline_s]
        for job in expired:
            self._pending.remove(job)
            self._close_cancelled_locked(
                job, f"deadline of {job.deadline_s}s expired while queued")
            self._promote_followers_locked(job.key)
        if expired:
            self._emit_queue_depth_locked()

    # -- the GPU worker loop --------------------------------------------
    def _worker_loop(self, gpu: GpuState) -> None:
        """One simulated GPU: pick (via policy), run, repeat."""
        while True:
            with self._cond:
                job = None
                while job is None:
                    if self._stopping:
                        return
                    self._expire_deadlines_locked()
                    if self._pending:
                        job = self.policy.select(self._pending,
                                                 time.time())
                        self._pending.remove(job)
                    else:
                        # Bounded wait so queued deadlines expire
                        # within ~half a second even when idle.
                        self._cond.wait(timeout=0.5)
                job.state = RUNNING
                job.gpu = gpu.index
                job.assigned_at = time.time()
                gpu.job_id = job.job_id
                job.emit("assigned", gpu=gpu.index)
                self._emit_queue_depth_locked()
            self._execute(job, gpu)

    def _call_runner(self, runner, job: Job,
                     control: JobControl) -> dict:
        """Invoke a runner, passing *control* when its signature takes it.

        Registry runners accept ``(config, seed, control)``; ad-hoc
        two-argument runners (tests, user registries) still work — they
        just can't observe cancellation mid-run.
        """
        try:
            import inspect
            parameters = inspect.signature(runner).parameters
            takes_control = len(parameters) >= 3 or any(
                p.kind == inspect.Parameter.VAR_KEYWORD
                for p in parameters.values())
        except (TypeError, ValueError):
            takes_control = False
        if takes_control:
            return runner(job.config, job.seed, control)
        return runner(job.config, job.seed)

    def _execute(self, job: Job, gpu: GpuState) -> None:
        """Run one job on *gpu* and close it (and its followers)."""
        control = JobControl(job)
        start = time.perf_counter()
        start_ts = self._ts()
        outcome = "done"
        try:
            control.check()          # deadline may expire in the queue
            runner = self.registry[job.workload]
            result = self._call_runner(runner, job, control)
        except JobCancelled as exc:
            outcome = "cancelled"
            self._finish(job, cancelled_reason=str(exc))
        except Exception as exc:
            outcome = "error"
            self._finish(job, error=f"{type(exc).__name__}: {exc}",
                         traceback=traceback_module.format_exc())
        else:
            runtime_s = time.perf_counter() - start
            self.cost_model.observe(job.workload, job.config, job.seed,
                                    runtime_s)
            self._finish(job, result=result)
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                gpu.job_id = None
                gpu.busy_s += elapsed
                if outcome == "done":
                    gpu.jobs_completed += 1
                elif outcome == "cancelled":
                    gpu.jobs_cancelled += 1
                else:
                    gpu.jobs_failed += 1
            if self.tracer.enabled:
                self.tracer.complete(
                    f"{job.workload} {job.job_id}", ts=start_ts,
                    dur=elapsed, tid=gpu_tid(gpu.index), cat="scheduler",
                    args={"workload": job.workload, "seed": job.seed,
                          "priority": job.priority, "outcome": outcome,
                          "policy": self.policy.name})

    def _finish(self, job: Job, *, result: dict | None = None,
                error: str | None = None, traceback: str | None = None,
                cancelled_reason: str | None = None) -> None:
        """Terminal transition for an executed job.

        Success memoizes (write-through when persistent) and closes the
        coalesced followers with the same result; failure closes them
        with the same error + traceback; cancellation promotes them to
        a fresh leader — they asked for the result, not for the
        cancellation.
        """
        now = time.time()
        with self._cond:
            if cancelled_reason is not None:
                self._close_cancelled_locked(job, cancelled_reason)
                self._promote_followers_locked(job.key)
                return
            followers = self._followers.pop(job.key, [])
            self._leaders.pop(job.key, None)
            closing = [job] + [self._jobs[jid] for jid in followers]
            for record in closing:
                record.finished_at = now
                if error is None:
                    record.state = DONE
                    record.result = result
                else:
                    record.state = ERROR
                    record.error = error
                    record.traceback = traceback
            if error is None:
                self.memo.put(job.key, result)
                self._counters["executed"] += 1
            else:
                self._counters["errors"] += 1 + len(followers)
        for record in closing:
            record.emit("done" if record.state == DONE else "error",
                        **({} if error is None else {"error": error}))
            record.done.set()

    # -- observation (JobQueue-compatible surface) ----------------------
    def _get(self, job_id: str) -> Job:
        """Look up a job record or raise the typed unknown-id error."""
        job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job id {job_id!r}")
        return job

    def status(self, job_id: str) -> dict:
        """Full job record (result included once done)."""
        return self._get(job_id).to_dict()

    def poll(self, job_id: str) -> str:
        """Just the lifecycle state, non-blocking."""
        return self._get(job_id).state

    def result(self, job_id: str, timeout: float | None = None) -> dict:
        """Block until the job finishes; raise on error/cancel/timeout."""
        job = self._get(job_id)
        if not job.done.wait(timeout):
            raise TimeoutError(
                f"job {job_id} still {job.state} after {timeout}s")
        if job.state in (ERROR, CANCELLED):
            raise ServiceError(f"job {job_id} {job.state}: {job.error}")
        assert job.result is not None
        return job.result

    def jobs(self) -> list[dict]:
        """All submissions, oldest first, without result payloads."""
        return [self._jobs[jid].to_dict(with_result=False)
                for jid in self._order]

    def events(self, job_id: str, since: int = 0,
               timeout: float | None = None) -> tuple[list[dict], str]:
        """Long-poll the job's event stream.

        Blocks until at least one event with ``seq >= since`` exists,
        the job reaches a terminal state, or *timeout* elapses; returns
        ``(events[since:], state)``.  An empty list therefore means
        "nothing new yet", never an error — poll again with the same
        ``since``.
        """
        job = self._get(job_id)
        if since < 0:
            raise ServiceError(f"'since' must be >= 0, got {since}")
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        with job.event_cond:
            while len(job.events) <= since and not job.terminal:
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    break
                job.event_cond.wait(remaining)
            return list(job.events[since:]), job.state

    def queue_depth(self) -> int:
        """Number of jobs waiting for a GPU right now."""
        with self._lock:
            return len(self._pending)

    def stats(self) -> dict:
        """Flat counters (the ``/api/stats`` shape, plus cluster keys)."""
        with self._lock:
            counters = dict(self._counters)
            counters["queue_depth"] = len(self._pending)
        counters["memo_entries"] = len(self.memo)
        counters["jobs"] = len(self._jobs)
        counters["gpus"] = len(self.gpus)
        counters["policy"] = self.policy.name
        return counters

    def cluster_stats(self) -> dict:
        """The ``/api/cluster/stats`` document: per-GPU rows, queue
        depth, counters, memo persistence state and the cost model's
        own snapshot."""
        with self._lock:
            gpus = [gpu.to_dict() for gpu in self.gpus]
            counters = dict(self._counters)
            queue_depth = len(self._pending)
            pending = [{"job_id": job.job_id, "workload": job.workload,
                        "priority": job.priority, "tenant": job.tenant}
                       for job in self._pending]
        return {
            "policy": self.policy.name,
            "gpus": gpus,
            "queue_depth": queue_depth,
            "pending": pending,
            "counters": counters,
            "memo": {
                "entries": len(self.memo),
                "path": self.memo.path,
                "loaded_from_disk": self.memo.loaded_from_disk,
            },
            "cost_model": self.cost_model.snapshot(),
        }

    # -- lifecycle ------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop the GPU workers.

        With ``wait=True`` each worker finishes its current job and
        exits (queued jobs stay queued and are never started).  The
        workers are daemon threads, so ``wait=False`` just signals and
        returns.
        """
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        if wait:
            for gpu in self.gpus:
                if gpu.thread is not None:
                    gpu.thread.join()
