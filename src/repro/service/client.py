"""Python client for the ``repro-serve`` REST service.

Pure stdlib (``urllib``); mirrors the route table in
:mod:`repro.service.rest`::

    client = ServiceClient("http://127.0.0.1:8000")
    job = client.submit("conv", {"algos": ["IMPLICIT_GEMM"]}, seed=7)
    result = client.result(job["job_id"], timeout=120)
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.errors import ServiceError


class ServiceClient:
    """Thin HTTP wrapper; every method returns the decoded JSON body."""

    def __init__(self, base_url: str, *, request_timeout: float = 60.0
                 ) -> None:
        self.base_url = base_url.rstrip("/")
        self.request_timeout = request_timeout

    # -- transport ------------------------------------------------------
    def _request(self, method: str, path: str, body: dict | None = None,
                 *, timeout: float | None = None) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(
                    request, timeout=timeout or self.request_timeout) as resp:
                return json.loads(resp.read() or b"{}")
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read() or b"{}").get("error", "")
            except ValueError:
                detail = ""
            raise ServiceError(
                f"{method} {path} failed with HTTP {exc.code}"
                + (f": {detail}" if detail else "")) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: "
                f"{exc.reason}") from exc

    # -- API ------------------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/api/stats")

    def workloads(self) -> list[str]:
        return self._request("GET", "/api/workloads")["workloads"]

    def submit(self, workload: str, config: dict | None = None,
               seed: int = 0) -> dict:
        """Submit a job; returns the job record (``job_id``, ``state``,
        ``memo_hit`` and — for instant memo hits — ``result``)."""
        return self._request("POST", "/api/jobs", {
            "workload": workload,
            "config": config or {},
            "seed": seed,
        })

    def jobs(self) -> list[dict]:
        return self._request("GET", "/api/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/api/jobs/{job_id}")

    def result(self, job_id: str, *, timeout: float = 120.0,
               poll_interval: float = 0.25) -> dict:
        """Block until *job_id* finishes and return its result payload.

        Uses the server's blocking result endpoint in slices so one hung
        request cannot eat the whole timeout budget.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceError(
                    f"timed out after {timeout:.0f}s waiting for job "
                    f"{job_id}")
            slice_s = min(remaining, 10.0)
            try:
                payload = self._request(
                    "GET", f"/api/jobs/{job_id}/result?timeout_s={slice_s}",
                    timeout=slice_s + self.request_timeout)
            except ServiceError as exc:
                if "HTTP 408" in str(exc):
                    time.sleep(poll_interval)
                    continue
                raise
            return payload["result"]
