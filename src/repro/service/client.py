"""Python client for the ``repro-serve`` REST service.

Pure stdlib (``urllib``); mirrors the route table in
:mod:`repro.service.rest`::

    client = ServiceClient("http://127.0.0.1:8000")
    job = client.submit("conv", {"algos": ["IMPLICIT_GEMM"]}, seed=7)
    result = client.result(job["job_id"], timeout=120)
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.errors import ServiceError


class ServiceClient:
    """Thin HTTP wrapper; every method returns the decoded JSON body."""

    def __init__(self, base_url: str, *, request_timeout: float = 60.0
                 ) -> None:
        self.base_url = base_url.rstrip("/")
        self.request_timeout = request_timeout

    # -- transport ------------------------------------------------------
    def _request(self, method: str, path: str, body: dict | None = None,
                 *, timeout: float | None = None) -> dict:
        """One HTTP round-trip; HTTP errors become ServiceError."""
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(
                    request, timeout=timeout or self.request_timeout) as resp:
                return json.loads(resp.read() or b"{}")
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read() or b"{}").get("error", "")
            except ValueError:
                detail = ""
            raise ServiceError(
                f"{method} {path} failed with HTTP {exc.code}"
                + (f": {detail}" if detail else "")) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: "
                f"{exc.reason}") from exc

    # -- API ------------------------------------------------------------
    def health(self) -> dict:
        """Liveness probe (``GET /healthz``)."""
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        """Service counters (``GET /api/stats``)."""
        return self._request("GET", "/api/stats")

    def workloads(self) -> list[str]:
        """Registered workload names (``GET /api/workloads``)."""
        return self._request("GET", "/api/workloads")["workloads"]

    def submit(self, workload: str, config: dict | None = None,
               seed: int = 0, *, priority: int | None = None,
               deadline_s: float | None = None,
               tenant: str | None = None) -> dict:
        """Submit a job; returns the job record (``job_id``, ``state``,
        ``memo_hit`` and — for instant memo hits — ``result``).

        *priority*, *deadline_s* and *tenant* are scheduling attributes
        understood only by the cluster-scheduler backend
        (``repro-serve --gpus N``); sending them to a plain-queue
        server raises :class:`~repro.errors.ServiceError` (HTTP 400).
        """
        body: dict = {
            "workload": workload,
            "config": config or {},
            "seed": seed,
        }
        if priority is not None:
            body["priority"] = priority
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        if tenant is not None:
            body["tenant"] = tenant
        return self._request("POST", "/api/jobs", body)

    def jobs(self) -> list[dict]:
        """All job records known to the server (no result payloads)."""
        return self._request("GET", "/api/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        """One job record (includes the result once the job is done)."""
        return self._request("GET", f"/api/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        """Cancel a job (scheduler backend only).

        Queued jobs close as ``cancelled`` immediately; running jobs
        stop at their next shard boundary — poll :meth:`job` or
        :meth:`events` for the terminal state.  Returns the job record
        as of the cancel request.
        """
        return self._request("POST", f"/api/jobs/{job_id}/cancel")

    def events(self, job_id: str, *, since: int = 0,
               timeout_s: float = 10.0) -> dict:
        """One long-poll of a job's event stream (scheduler backend).

        Returns ``{"events": [...], "state": ..., "next_since": N}``;
        pass ``next_since`` back as *since* to stream incrementally.
        An empty ``events`` list means the poll timed out with nothing
        new — not an error.
        """
        return self._request(
            "GET", f"/api/jobs/{job_id}/events?since={since}"
                   f"&timeout_s={timeout_s}",
            timeout=timeout_s + self.request_timeout)

    def stream_events(self, job_id: str, *, poll_timeout_s: float = 10.0,
                      overall_timeout_s: float = 600.0):
        """Yield a job's events as they happen until it goes terminal.

        A generator over :meth:`events` long-polls: yields each event
        dict (``kind``, ``ts``, ``seq``, extras), returns once the job
        reaches ``done``/``error``/``cancelled`` and all its events
        have been yielded.  Raises :class:`~repro.errors.ServiceError`
        if *overall_timeout_s* elapses first.
        """
        since = 0
        deadline = time.monotonic() + overall_timeout_s
        while True:
            payload = self.events(job_id, since=since,
                                  timeout_s=poll_timeout_s)
            for event in payload["events"]:
                yield event
            since = payload["next_since"]
            if payload["state"] in ("done", "error", "cancelled"):
                return
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"job {job_id} still {payload['state']} after "
                    f"{overall_timeout_s:.0f}s of event streaming")

    def cluster_stats(self) -> dict:
        """The scheduler's per-GPU cluster view (scheduler backend)."""
        return self._request("GET", "/api/cluster/stats")

    def result(self, job_id: str, *, timeout: float = 120.0,
               poll_interval: float = 0.25) -> dict:
        """Block until *job_id* finishes and return its result payload.

        Uses the server's blocking result endpoint in slices so one hung
        request cannot eat the whole timeout budget.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceError(
                    f"timed out after {timeout:.0f}s waiting for job "
                    f"{job_id}")
            slice_s = min(remaining, 10.0)
            try:
                payload = self._request(
                    "GET", f"/api/jobs/{job_id}/result?timeout_s={slice_s}",
                    timeout=slice_s + self.request_timeout)
            except ServiceError as exc:
                if "HTTP 408" in str(exc):
                    time.sleep(poll_interval)
                    continue
                raise
            return payload["result"]
