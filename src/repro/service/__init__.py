"""The sharded simulation service and its cluster scheduler.

Functional-mode CTAs are independent, which makes the simulator
embarrassingly parallel at two levels — and this package exploits both:

* :mod:`repro.service.pool` — a ``multiprocessing`` **CTA shard
  executor**: one kernel launch is partitioned into contiguous CTA
  ranges, each range runs in a worker process, and global-memory writes
  plus instruction/opcode counters merge back bit-identically to a
  single-process run.  :class:`ShardedFunctionalBackend` plugs the
  executor into :class:`repro.cuda.runtime.CudaRuntime` as a drop-in
  backend.
* :mod:`repro.service.jobs` — an **async job queue**: ``submit``
  returns a job id immediately, workloads execute on a worker pool, and
  results are memoized on a structural key so repeat submissions are
  cache hits.
* :mod:`repro.service.scheduler` — the **cluster scheduler**: a driver
  multiplexing thousands of queued jobs across N simulated GPU workers
  under a pluggable allocation :class:`Policy` (FIFO, strict priority,
  round-robin fair share, cost-aware SJF), with priorities, deadlines,
  cooperative cancellation, streaming progress events, and a memo
  table persisted across restarts.
* :mod:`repro.service.costmodel` — the **runtime estimator** behind
  the SJF policy: :class:`HistoryCostModel` tracks measured runtimes
  per structural fingerprint; a SimNet-style learned predictor drops
  in by subclassing :class:`CostModel`.
* :mod:`repro.service.rest` — a stdlib-only **REST front door**
  (``repro-serve``) over either backend, with
  :mod:`repro.service.client` as its Python client.

Many concurrent sweeps share one warm kernel/compile cache
(:mod:`repro.functional.kernelcache`), which is what makes thousands of
memoized jobs cheap — the SimNet-style sweep economics the ROADMAP
calls the "millions of users" path.
"""

from repro.service.client import ServiceClient
from repro.service.costmodel import CostModel, HistoryCostModel, cost_key
from repro.service.jobs import JobControl, JobQueue, MemoTable, job_key
from repro.service.pool import (
    ShardExecutor, ShardedFunctionalBackend, ShardedRunResult)
from repro.service.scheduler import (
    POLICIES, ClusterScheduler, FairSharePolicy, FifoPolicy, GpuState,
    Policy, PriorityPolicy, SjfPolicy, make_policy)

__all__ = [
    "ClusterScheduler",
    "CostModel",
    "FairSharePolicy",
    "FifoPolicy",
    "GpuState",
    "HistoryCostModel",
    "JobControl",
    "JobQueue",
    "MemoTable",
    "POLICIES",
    "Policy",
    "PriorityPolicy",
    "ServiceClient",
    "ShardExecutor",
    "ShardedFunctionalBackend",
    "ShardedRunResult",
    "SjfPolicy",
    "cost_key",
    "job_key",
    "make_policy",
]
