"""The sharded simulation service.

Functional-mode CTAs are independent, which makes the simulator
embarrassingly parallel at two levels — and this package exploits both:

* :mod:`repro.service.pool` — a ``multiprocessing`` **CTA shard
  executor**: one kernel launch is partitioned into contiguous CTA
  ranges, each range runs in a worker process, and global-memory writes
  plus instruction/opcode counters merge back bit-identically to a
  single-process run.  :class:`ShardedFunctionalBackend` plugs the
  executor into :class:`repro.cuda.runtime.CudaRuntime` as a drop-in
  backend.
* :mod:`repro.service.jobs` — an **async job queue**: ``submit``
  returns a job id immediately, workloads execute on a worker pool, and
  results are memoized on a structural key so repeat submissions are
  cache hits.
* :mod:`repro.service.rest` — a stdlib-only **REST front door**
  (``repro-serve``) over the job queue, with
  :mod:`repro.service.client` as its Python client.

Many concurrent sweeps share one warm kernel/compile cache
(:mod:`repro.functional.kernelcache`), which is what makes thousands of
memoized jobs cheap — the SimNet-style sweep economics the ROADMAP
calls the "millions of users" path.
"""

from repro.service.client import ServiceClient
from repro.service.jobs import JobQueue, job_key
from repro.service.pool import (
    ShardExecutor, ShardedFunctionalBackend, ShardedRunResult)

__all__ = [
    "JobQueue",
    "ServiceClient",
    "ShardExecutor",
    "ShardedFunctionalBackend",
    "ShardedRunResult",
    "job_key",
]
