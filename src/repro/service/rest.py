"""Stdlib-only REST front door for the job queue (``repro-serve``).

No framework, no dependencies: :class:`http.server.ThreadingHTTPServer`
plus JSON bodies.  The API surface:

=======  ==========================  =====================================
Method   Path                        Meaning
=======  ==========================  =====================================
GET      ``/healthz``                liveness probe
GET      ``/api/stats``              queue + kernel-cache counters
GET      ``/api/workloads``          registered workload names
POST     ``/api/jobs``               submit ``{workload, config?, seed?}``
GET      ``/api/jobs``               all jobs (no result payloads)
GET      ``/api/jobs/<id>``          one job record (result when done)
GET      ``/api/jobs/<id>/result``   block up to ``?timeout_s=`` for it
=======  ==========================  =====================================

``POST /api/jobs`` answers ``202 Accepted`` with the job record; a
memoized or coalesced submission comes back with ``memo_hit: true``
(and, for a memo hit, ``state: "done"`` plus the cached result —
the second identical submission never simulates anything).

Run it::

    repro-serve --port 8000 --workers 4
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import ServiceError
from repro.functional import kernelcache
from repro.service.jobs import JobQueue

_JOB_PATH = re.compile(r"^/api/jobs/([A-Za-z0-9_.-]+)(/result)?$")

#: Cap on blocking-result waits so a stuck client cannot pin a handler
#: thread forever.
MAX_RESULT_WAIT_S = 300.0


class ServiceHandler(BaseHTTPRequestHandler):
    """One request; the queue lives on the server object."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------
    @property
    def queue(self) -> JobQueue:
        return self.server.queue  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:
        if getattr(self.server, "quiet", False):
            return
        sys.stderr.write("[repro-serve] %s\n" % (format % args))

    def _send(self, code: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str) -> None:
        self._send(code, {"error": message})

    def _read_json(self) -> dict | None:
        try:
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length) if length else b"{}"
            body = json.loads(raw or b"{}")
        except (ValueError, OSError):
            self._error(400, "request body is not valid JSON")
            return None
        if not isinstance(body, dict):
            self._error(400, "request body must be a JSON object")
            return None
        return body

    # -- routes ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path, _, query = self.path.partition("?")
        if path == "/healthz":
            self._send(200, {"ok": True})
            return
        if path == "/api/stats":
            stats = self.queue.stats()
            stats["kernelcache"] = kernelcache.counters()
            self._send(200, stats)
            return
        if path == "/api/workloads":
            self._send(200, {"workloads": sorted(self.queue.registry)})
            return
        if path == "/api/jobs":
            self._send(200, {"jobs": self.queue.jobs()})
            return
        match = _JOB_PATH.match(path)
        if match is None:
            self._error(404, f"no route for {path}")
            return
        job_id, want_result = match.group(1), bool(match.group(2))
        try:
            if not want_result:
                self._send(200, self.queue.status(job_id))
                return
            timeout = _query_float(query, "timeout_s", default=30.0)
            timeout = min(timeout, MAX_RESULT_WAIT_S)
            result = self.queue.result(job_id, timeout=timeout)
        except ServiceError as exc:
            code = 404 if "unknown job id" in str(exc) else 500
            self._error(code, str(exc))
        except TimeoutError as exc:
            self._error(408, str(exc))
        else:
            self._send(200, {"job_id": job_id, "result": result})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        if self.path.partition("?")[0] != "/api/jobs":
            self._error(404, f"no route for {self.path}")
            return
        body = self._read_json()
        if body is None:
            return
        workload = body.get("workload")
        if not isinstance(workload, str):
            self._error(400, "missing required field 'workload'")
            return
        config = body.get("config") or {}
        if not isinstance(config, dict):
            self._error(400, "'config' must be a JSON object")
            return
        try:
            seed = int(body.get("seed", 0))
        except (TypeError, ValueError):
            self._error(400, "'seed' must be an integer")
            return
        try:
            job = self.queue.submit(workload, config, seed)
        except ServiceError as exc:
            self._error(400, str(exc))
            return
        self._send(202, job.to_dict())


def _query_float(query: str, name: str, default: float) -> float:
    for pair in query.split("&"):
        key, _, value = pair.partition("=")
        if key == name:
            try:
                return float(value)
            except ValueError:
                return default
    return default


def make_server(queue: JobQueue, host: str = "127.0.0.1",
                port: int = 0, *, quiet: bool = False
                ) -> ThreadingHTTPServer:
    """Build (but do not start) the HTTP server; ``port=0`` picks a
    free port — read it back from ``server.server_address``."""
    server = ThreadingHTTPServer((host, port), ServiceHandler)
    server.queue = queue  # type: ignore[attr-defined]
    server.quiet = quiet  # type: ignore[attr-defined]
    return server


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve the GPU simulator as an async job service.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8000)
    parser.add_argument("--workers", type=int, default=2,
                        help="job worker threads (default 2)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-request logging")
    args = parser.parse_args(argv)
    queue = JobQueue(workers=args.workers)
    server = make_server(queue, args.host, args.port, quiet=args.quiet)
    host, port = server.server_address[:2]
    print(f"repro-serve listening on http://{host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        queue.shutdown(wait=False)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
