"""Stdlib-only REST front door for the job service (``repro-serve``).

No framework, no dependencies: :class:`http.server.ThreadingHTTPServer`
plus JSON bodies.  The API surface (see ``docs/OPERATIONS.md`` for
request/response examples of every route):

=======  ============================  ===================================
Method   Path                          Meaning
=======  ============================  ===================================
GET      ``/healthz``                  liveness probe
GET      ``/api/stats``                queue + kernel-cache counters
GET      ``/api/workloads``            registered workload names
POST     ``/api/jobs``                 submit ``{workload, config?, seed?,
                                       priority?, deadline_s?, tenant?}``
GET      ``/api/jobs``                 all jobs (no result payloads)
GET      ``/api/jobs/<id>``            one job record (result when done)
GET      ``/api/jobs/<id>/result``     block up to ``?timeout_s=`` for it
GET      ``/api/jobs/<id>/events``     long-poll the job's event stream
POST     ``/api/jobs/<id>/cancel``     cancel queued/running job
GET      ``/api/cluster/stats``        per-GPU view of the scheduler
=======  ============================  ===================================

``POST /api/jobs`` answers ``202 Accepted`` with the job record; a
memoized or coalesced submission comes back with ``memo_hit: true``
(and, for a memo hit, ``state: "done"`` plus the cached result —
the second identical submission never simulates anything).

The server fronts either backend: the plain
:class:`~repro.service.jobs.JobQueue` (``--workers N``) or the cluster
:class:`~repro.service.scheduler.ClusterScheduler` (``--gpus N``, the
default).  The scheduler-only routes (events, cancel, cluster stats)
and submit fields (priority, deadline_s, tenant) answer ``404`` /
``400`` respectively when the plain queue is mounted.

Run it::

    repro-serve --gpus 4 --policy sjf --port 8000
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import ServiceError
from repro.functional import kernelcache
from repro.service.jobs import JobQueue
from repro.service.scheduler import POLICIES, ClusterScheduler

_JOB_PATH = re.compile(
    r"^/api/jobs/([A-Za-z0-9_.-]+)(/result|/events|/cancel)?$")

#: Cap on blocking-result waits so a stuck client cannot pin a handler
#: thread forever.
MAX_RESULT_WAIT_S = 300.0

#: Cap on a single events long-poll; clients re-poll with ``since``.
MAX_EVENTS_WAIT_S = 60.0

#: The full route manifest: ``(method, path)`` for every endpoint the
#: server answers.  ``tools/check_operations_doc.py`` asserts that
#: ``docs/OPERATIONS.md`` documents every row, so adding a route here
#: without documenting it fails CI.
API_ROUTES = (
    ("GET", "/healthz"),
    ("GET", "/api/stats"),
    ("GET", "/api/workloads"),
    ("POST", "/api/jobs"),
    ("GET", "/api/jobs"),
    ("GET", "/api/jobs/<id>"),
    ("GET", "/api/jobs/<id>/result"),
    ("GET", "/api/jobs/<id>/events"),
    ("POST", "/api/jobs/<id>/cancel"),
    ("GET", "/api/cluster/stats"),
)


class ServiceHandler(BaseHTTPRequestHandler):
    """One request; the queue/scheduler lives on the server object."""

    server_version = "repro-serve/1.1"
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------
    @property
    def queue(self):
        """The mounted backend: a JobQueue or a ClusterScheduler."""
        return self.server.queue  # type: ignore[attr-defined]

    @property
    def scheduler(self) -> ClusterScheduler | None:
        """The backend if it is a ClusterScheduler, else ``None``."""
        queue = self.queue
        return queue if isinstance(queue, ClusterScheduler) else None

    def log_message(self, format: str, *args) -> None:
        """Route http.server's per-request lines to stderr (or drop
        them when the server was built with ``quiet=True``)."""
        if getattr(self.server, "quiet", False):
            return
        sys.stderr.write("[repro-serve] %s\n" % (format % args))

    def _send(self, code: int, payload: dict) -> None:
        """Serialize *payload* and send it with the right headers."""
        body = json.dumps(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str) -> None:
        """Send the standard error envelope ``{"error": message}``."""
        self._send(code, {"error": message})

    def _read_json(self) -> dict | None:
        """Parse the request body as a JSON object (else answer 400)."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length) if length else b"{}"
            body = json.loads(raw or b"{}")
        except (ValueError, OSError):
            self._error(400, "request body is not valid JSON")
            return None
        if not isinstance(body, dict):
            self._error(400, "request body must be a JSON object")
            return None
        return body

    # -- routes ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        """Dispatch all GET routes (see :data:`API_ROUTES`)."""
        path, _, query = self.path.partition("?")
        if path == "/healthz":
            self._send(200, {"ok": True})
            return
        if path == "/api/stats":
            stats = self.queue.stats()
            stats["kernelcache"] = kernelcache.counters()
            self._send(200, stats)
            return
        if path == "/api/workloads":
            self._send(200, {"workloads": sorted(self.queue.registry)})
            return
        if path == "/api/jobs":
            self._send(200, {"jobs": self.queue.jobs()})
            return
        if path == "/api/cluster/stats":
            scheduler = self.scheduler
            if scheduler is None:
                self._error(404, "cluster stats need the scheduler "
                                 "backend (repro-serve --gpus N)")
                return
            self._send(200, scheduler.cluster_stats())
            return
        match = _JOB_PATH.match(path)
        if match is None:
            self._error(404, f"no route for {path}")
            return
        job_id, tail = match.group(1), match.group(2) or ""
        if tail == "/cancel":
            self._error(404, "cancel is POST /api/jobs/<id>/cancel")
            return
        try:
            if tail == "":
                self._send(200, self.queue.status(job_id))
                return
            if tail == "/events":
                self._get_events(job_id, query)
                return
            timeout = _query_float(query, "timeout_s", default=30.0)
            timeout = min(timeout, MAX_RESULT_WAIT_S)
            result = self.queue.result(job_id, timeout=timeout)
        except ServiceError as exc:
            code = 404 if "unknown job id" in str(exc) else 500
            self._error(code, str(exc))
        except TimeoutError as exc:
            self._error(408, str(exc))
        else:
            self._send(200, {"job_id": job_id, "result": result})

    def _get_events(self, job_id: str, query: str) -> None:
        """``GET /api/jobs/<id>/events`` — long-poll the event stream.

        ``?since=N`` skips the first N events (pass the previous
        response's ``next_since``); ``?timeout_s=`` bounds the wait.
        Timing out is a normal ``200`` with an empty list, never 408.
        """
        scheduler = self.scheduler
        if scheduler is None:
            self._error(404, "event streaming needs the scheduler "
                             "backend (repro-serve --gpus N)")
            return
        since = int(_query_float(query, "since", default=0.0))
        timeout = _query_float(query, "timeout_s", default=10.0)
        timeout = min(max(timeout, 0.0), MAX_EVENTS_WAIT_S)
        events, state = scheduler.events(job_id, since, timeout=timeout)
        self._send(200, {"job_id": job_id, "state": state,
                         "events": events,
                         "next_since": since + len(events)})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        """Dispatch POST routes: job submission and cancellation."""
        path = self.path.partition("?")[0]
        match = _JOB_PATH.match(path)
        if match is not None and match.group(2) == "/cancel":
            self._post_cancel(match.group(1))
            return
        if path != "/api/jobs":
            self._error(404, f"no route for {path}")
            return
        body = self._read_json()
        if body is None:
            return
        workload = body.get("workload")
        if not isinstance(workload, str):
            self._error(400, "missing required field 'workload'")
            return
        config = body.get("config") or {}
        if not isinstance(config, dict):
            self._error(400, "'config' must be a JSON object")
            return
        try:
            seed = int(body.get("seed", 0))
        except (TypeError, ValueError):
            self._error(400, "'seed' must be an integer")
            return
        scheduling = {}
        for field, caster in (("priority", int), ("deadline_s", float),
                              ("tenant", str)):
            value = body.get(field)
            if value is None:
                continue
            try:
                scheduling[field] = caster(value)
            except (TypeError, ValueError):
                self._error(400, f"{field!r} must be a {caster.__name__}")
                return
        if scheduling and self.scheduler is None:
            self._error(400, f"{sorted(scheduling)} need the scheduler "
                             "backend (repro-serve --gpus N)")
            return
        try:
            job = self.queue.submit(workload, config, seed, **scheduling)
        except ServiceError as exc:
            self._error(400, str(exc))
            return
        self._send(202, job.to_dict())

    def _post_cancel(self, job_id: str) -> None:
        """``POST /api/jobs/<id>/cancel`` — instant for queued jobs,
        cooperative (next shard boundary) for running ones."""
        scheduler = self.scheduler
        if scheduler is None:
            self._error(404, "cancellation needs the scheduler "
                             "backend (repro-serve --gpus N)")
            return
        try:
            record = scheduler.cancel(job_id)
        except ServiceError as exc:
            code = 404 if "unknown job id" in str(exc) else 500
            self._error(code, str(exc))
            return
        self._send(200, record)


def _query_float(query: str, name: str, default: float) -> float:
    """Pull one float query parameter out of a raw query string."""
    for pair in query.split("&"):
        key, _, value = pair.partition("=")
        if key == name:
            try:
                return float(value)
            except ValueError:
                return default
    return default


def make_server(queue, host: str = "127.0.0.1",
                port: int = 0, *, quiet: bool = False
                ) -> ThreadingHTTPServer:
    """Build (but do not start) the HTTP server; ``port=0`` picks a
    free port — read it back from ``server.server_address``.  *queue*
    is either a :class:`~repro.service.jobs.JobQueue` or a
    :class:`~repro.service.scheduler.ClusterScheduler`."""
    server = ThreadingHTTPServer((host, port), ServiceHandler)
    server.queue = queue  # type: ignore[attr-defined]
    server.quiet = quiet  # type: ignore[attr-defined]
    return server


def main(argv: list[str] | None = None) -> int:
    """``repro-serve`` entry point.

    Mounts the cluster scheduler by default (``--gpus``/``--policy``);
    ``--workers N`` instead mounts the plain PR 6 job queue, which has
    no priorities, cancellation or event streams.
    """
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve the GPU simulator as an async job service.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8000)
    parser.add_argument("--gpus", type=int, default=2,
                        help="simulated GPU workers for the cluster "
                             "scheduler (default 2)")
    parser.add_argument("--policy", choices=sorted(POLICIES),
                        default="fifo",
                        help="job allocation policy (default fifo)")
    parser.add_argument("--workers", type=int, default=None,
                        help="mount the plain JobQueue with N worker "
                             "threads instead of the cluster scheduler")
    parser.add_argument("--no-persist", action="store_true",
                        help="keep the job memo table in memory only "
                             "(default: persisted under the repro "
                             "cache dir)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-request logging")
    args = parser.parse_args(argv)
    if args.workers is not None:
        queue = JobQueue(workers=args.workers)
        backend = f"queue workers={args.workers}"
    else:
        queue = ClusterScheduler(
            gpus=args.gpus, policy=args.policy,
            memo_path=None if args.no_persist else "<default>")
        backend = f"gpus={args.gpus} policy={args.policy}"
    server = make_server(queue, args.host, args.port, quiet=args.quiet)
    host, port = server.server_address[:2]
    print(f"repro-serve listening on http://{host}:{port} ({backend})",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        queue.shutdown(wait=False)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
