"""Async job queue with structural memoization.

``submit(workload, config, seed) -> job_id`` returns immediately; jobs
run on a worker pool and are observed through ``status``/``poll`` and a
blocking ``result``.  Results are memoized on a **structural key** —
the SHA-256 of the canonicalized ``(workload, config, seed)`` triple —
so a repeat submission is a cache hit that completes instantly, and
concurrent submissions of the same key coalesce onto one execution.
This is the sweep-economics shape SimNet motivates: a parameter sweep
resubmitting thousands of near-duplicate simulations pays for each
distinct configuration once.

Workloads are looked up in a registry of named runners.  Each runner
builds a fresh :class:`~repro.cuda.runtime.CudaRuntime` per execution
(jobs never share mutable simulator state; what they *do* share is the
process-wide warm kernel/compile cache) and returns a JSON-able result:
an allocation digest, instruction totals and a per-kernel launch table.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ServiceError

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
ERROR = "error"


def job_key(workload: str, config: dict | None, seed: int) -> str:
    """Structural memo key: equal inputs -> equal key, always."""
    canonical = json.dumps(
        {"workload": workload, "config": config or {}, "seed": seed},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


# ---------------------------------------------------------------------------
# Workload runners
# ---------------------------------------------------------------------------
def _digest_allocations(runtime) -> str:
    hasher = hashlib.sha256()
    gm = runtime.global_mem
    for base in sorted(gm.allocations):
        hasher.update(base.to_bytes(8, "little"))
        hasher.update(gm.read(base, gm.allocations[base]))
    return hasher.hexdigest()


def _make_backend(config: dict):
    """Build the execution backend a job asked for.

    ``config["shards"]`` switches the launch path to the multiprocessing
    CTA fan-out; otherwise the in-process tier named by
    ``config["fast_mode"]`` (default megablock — the fast sweep tier).
    ``config["sanitize"]`` arms the shadow-state sanitizer on either
    path; its findings ride back on the job result.
    """
    from repro.cuda.runtime import FunctionalBackend
    from repro.service.pool import ShardedFunctionalBackend
    fast_mode = config.get("fast_mode", "megablock")
    sanitize = bool(config.get("sanitize"))
    shards = config.get("shards")
    if shards:
        return ShardedFunctionalBackend(int(shards), fast_mode=fast_mode,
                                        sanitize=sanitize)
    return FunctionalBackend(fast_mode=fast_mode, sanitize=sanitize)


def _finish(runtime, backend, workload: str, extra: dict) -> dict:
    runtime.synchronize()
    kernels: dict[str, int] = {}
    for profile in runtime.profiles:
        kernels[profile.name] = kernels.get(profile.name, 0) + 1
    result = {
        "workload": workload,
        "digest": _digest_allocations(runtime),
        "instructions": sum(p.result.instructions
                            for p in runtime.profiles),
        "launches": len(runtime.profiles),
        "kernels": kernels,
    }
    result.update(extra)
    sanitizer = getattr(backend, "sanitize", None)
    if sanitizer is not None:
        result["sanitize"] = {
            "findings": sanitizer.findings_list(),
            "counters": dict(sanitizer.counters),
        }
    if hasattr(backend, "close"):
        backend.close()
    return result


def run_saxpy(config: dict, seed: int) -> dict:
    """A tiny single-kernel job (the smoke-test workload)."""
    from repro.cuda.runtime import CudaRuntime
    from repro.ptx.builder import PTXBuilder, f32
    n = int(config.get("n", 256))
    scale = float(config.get("scale", 2.0))
    backend = _make_backend(config)
    rt = CudaRuntime(backend=backend)
    b = PTXBuilder("saxpy", [("xs", "u64"), ("ys", "u64"), ("n", "u32")])
    xs = b.ld_param("u64", "xs")
    ys = b.ld_param("u64", "ys")
    count = b.ld_param("u32", "n")
    tid = b.global_tid_x()
    b.guard_tid_below(tid, count)
    x = b.reg("f32")
    y = b.reg("f32")
    b.ins("ld.global.f32", x, f"[{b.elem_addr(xs, tid)}]")
    b.ins("ld.global.f32", y, f"[{b.elem_addr(ys, tid)}]")
    b.ins("fma.rn.f32", y, x, f32(scale), y)
    b.ins("st.global.f32", f"[{b.elem_addr(ys, tid)}]", y)
    rt.load_ptx(b.build(), "service_saxpy")
    rng = np.random.default_rng(seed)
    xs_ptr = rt.upload_f32(rng.random(n, dtype=np.float32))
    ys_ptr = rt.upload_f32(rng.random(n, dtype=np.float32))
    rt.launch("saxpy", ((n + 63) // 64, 1, 1), (64, 1, 1),
              [xs_ptr, ys_ptr, n])
    return _finish(rt, backend, "saxpy", {"n": n})


def run_conv(config: dict, seed: int) -> dict:
    """conv_sample forward convolutions over the requested algorithms."""
    from repro.cuda.runtime import CudaRuntime
    from repro.cudnn import ConvFwdAlgo
    from repro.workloads.conv_sample import ConvSample, ConvSampleConfig
    backend = _make_backend(config)
    rt = CudaRuntime(backend=backend)
    geometry = {name: int(config[name]) for name in
                ("batch", "channels", "height", "width", "filters")
                if name in config}
    sample = ConvSample(rt, ConvSampleConfig(seed=seed, **geometry))
    algo_names = config.get("algos", ["IMPLICIT_GEMM"])
    try:
        algos = [ConvFwdAlgo[name] for name in algo_names]
    except KeyError as exc:
        raise ServiceError(f"unknown conv algorithm {exc}") from exc
    for algo in algos:
        sample.run_forward(algo)
    return _finish(rt, backend, "conv", {"algos": list(algo_names)})


def run_lenet(config: dict, seed: int) -> dict:
    """Reduced LeNet forward pass (the paper's MNIST net at CI scale)."""
    from repro.cuda.runtime import CudaRuntime
    from repro.cudnn import Cudnn, build_application_binary
    from repro.nn.lenet import LeNet, LeNetConfig
    backend = _make_backend(config)
    rt = CudaRuntime(backend=backend)
    rt.load_binary(build_application_binary())
    lenet_config = LeNetConfig.reduced()
    model = LeNet(Cudnn(rt), lenet_config)
    rng = np.random.default_rng(seed)
    images = rng.standard_normal(
        (int(config.get("images", 1)), lenet_config.in_channels,
         lenet_config.input_hw, lenet_config.input_hw)
        ).astype(np.float32)
    logits = model.forward(images)
    return _finish(rt, backend, "lenet",
                   {"logits_sha256": hashlib.sha256(
                       logits.tobytes()).hexdigest()})


#: Named workloads a job may submit.
REGISTRY = {
    "saxpy": run_saxpy,
    "conv": run_conv,
    "lenet": run_lenet,
}


# ---------------------------------------------------------------------------
# The queue
# ---------------------------------------------------------------------------
@dataclass
class Job:
    """One submission's full lifecycle record."""

    job_id: str
    key: str
    workload: str
    config: dict
    seed: int
    state: str = QUEUED
    memo_hit: bool = False
    result: dict | None = None
    error: str | None = None
    submitted_at: float = 0.0
    finished_at: float | None = None
    done: threading.Event = field(default_factory=threading.Event,
                                  repr=False)

    def to_dict(self, *, with_result: bool = True) -> dict:
        record = {
            "job_id": self.job_id,
            "key": self.key,
            "workload": self.workload,
            "config": self.config,
            "seed": self.seed,
            "state": self.state,
            "memo_hit": self.memo_hit,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
        }
        if self.error is not None:
            record["error"] = self.error
        if with_result and self.result is not None:
            record["result"] = self.result
        return record


class JobQueue:
    """Thread-pooled async execution with memoized results.

    Three submission outcomes, all returning instantly:

    * **memo hit** — the key has a completed result; the new job is
      born ``done`` with that result and ``memo_hit=True``.
    * **coalesced** — the key is queued/running right now; the new job
      completes when the leader does (also ``memo_hit=True``; the
      simulation runs once).
    * **fresh** — the job is queued for a worker thread.
    """

    def __init__(self, workers: int = 2,
                 registry: dict | None = None) -> None:
        self.registry = dict(registry or REGISTRY)
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._memo: dict[str, dict] = {}
        self._leaders: dict[str, str] = {}     # key -> leader job_id
        self._followers: dict[str, list[str]] = {}
        self._seq = itertools.count(1)
        self._counters = {"submitted": 0, "executed": 0,
                          "memo_hits": 0, "coalesced": 0, "errors": 0}
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-job")

    # -- submission -----------------------------------------------------
    def submit(self, workload: str, config: dict | None = None,
               seed: int = 0) -> Job:
        if workload not in self.registry:
            raise ServiceError(
                f"unknown workload {workload!r}; "
                f"known: {sorted(self.registry)}")
        config = dict(config or {})
        key = job_key(workload, config, seed)
        with self._lock:
            job = Job(job_id=f"job-{next(self._seq):06d}", key=key,
                      workload=workload, config=config, seed=int(seed),
                      submitted_at=time.time())
            self._jobs[job.job_id] = job
            self._order.append(job.job_id)
            self._counters["submitted"] += 1
            cached = self._memo.get(key)
            if cached is not None:
                job.state = DONE
                job.memo_hit = True
                job.result = cached
                job.finished_at = time.time()
                job.done.set()
                self._counters["memo_hits"] += 1
                return job
            leader = self._leaders.get(key)
            if leader is not None:
                job.memo_hit = True
                self._followers.setdefault(key, []).append(job.job_id)
                self._counters["coalesced"] += 1
                return job
            self._leaders[key] = job.job_id
        self._executor.submit(self._run, job.job_id)
        return job

    # -- execution ------------------------------------------------------
    def _run(self, job_id: str) -> None:
        job = self._jobs[job_id]
        with self._lock:
            job.state = RUNNING
        try:
            runner = self.registry[job.workload]
            result = runner(job.config, job.seed)
        except Exception as exc:  # a failed job must never kill a worker
            self._complete(job, error=f"{type(exc).__name__}: {exc}")
        else:
            self._complete(job, result=result)

    def _complete(self, job: Job, *, result: dict | None = None,
                  error: str | None = None) -> None:
        now = time.time()
        with self._lock:
            followers = self._followers.pop(job.key, [])
            self._leaders.pop(job.key, None)
            closing = [job] + [self._jobs[jid] for jid in followers]
            for record in closing:
                record.finished_at = now
                if error is None:
                    record.state = DONE
                    record.result = result
                else:
                    record.state = ERROR
                    record.error = error
            if error is None:
                self._memo[job.key] = result
                self._counters["executed"] += 1
            else:
                self._counters["errors"] += 1 + len(followers)
        for record in closing:
            record.done.set()

    # -- observation ----------------------------------------------------
    def _get(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job id {job_id!r}")
        return job

    def status(self, job_id: str) -> dict:
        """Full job record (result included once done)."""
        return self._get(job_id).to_dict()

    def poll(self, job_id: str) -> str:
        """Just the lifecycle state, non-blocking."""
        return self._get(job_id).state

    def result(self, job_id: str, timeout: float | None = None) -> dict:
        """Block until the job finishes; raise on error or timeout."""
        job = self._get(job_id)
        if not job.done.wait(timeout):
            raise TimeoutError(
                f"job {job_id} still {job.state} after {timeout}s")
        if job.state == ERROR:
            raise ServiceError(f"job {job_id} failed: {job.error}")
        assert job.result is not None
        return job.result

    def jobs(self) -> list[dict]:
        """All submissions, oldest first, without result payloads."""
        return [self._jobs[jid].to_dict(with_result=False)
                for jid in self._order]

    def stats(self) -> dict:
        with self._lock:
            counters = dict(self._counters)
        counters["memo_entries"] = len(self._memo)
        counters["jobs"] = len(self._jobs)
        return counters

    def shutdown(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait)
