"""Async job queue with structural memoization.

``submit(workload, config, seed) -> job_id`` returns immediately; jobs
run on a worker pool and are observed through ``status``/``poll`` and a
blocking ``result``.  Results are memoized on a **structural key** —
the SHA-256 of the canonicalized ``(workload, config, seed)`` triple —
so a repeat submission is a cache hit that completes instantly, and
concurrent submissions of the same key coalesce onto one execution.
This is the sweep-economics shape SimNet motivates: a parameter sweep
resubmitting thousands of near-duplicate simulations pays for each
distinct configuration once.

Workloads are looked up in a registry of named runners.  Each runner
builds a fresh :class:`~repro.cuda.runtime.CudaRuntime` per execution
(jobs never share mutable simulator state; what they *do* share is the
process-wide warm kernel/compile cache) and returns a JSON-able result:
an allocation digest, instruction totals and a per-kernel launch table.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import tempfile
import threading
import time
import traceback as traceback_module
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.errors import JobCancelled, ServiceError

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
ERROR = "error"
CANCELLED = "cancelled"

#: States a job never leaves.
TERMINAL_STATES = frozenset({DONE, ERROR, CANCELLED})


def job_key(workload: str, config: dict | None, seed: int) -> str:
    """Structural memo key: equal inputs -> equal key, always."""
    canonical = json.dumps(
        {"workload": workload, "config": config or {}, "seed": seed},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


# ---------------------------------------------------------------------------
# Cooperative cancellation + progress
# ---------------------------------------------------------------------------
class JobControl:
    """Handle a runner uses to report progress and observe cancellation.

    The scheduler hands every running job one of these; the backend
    wrapper (and any runner that wants finer granularity) calls
    :meth:`progress` at natural boundaries — after each kernel launch,
    which on the sharded path is a full shard fan-out + merge.  Each
    call emits a ``shard-progress`` event on the job and then
    :meth:`check`\\ s for a requested cancel or an expired deadline,
    raising :class:`~repro.errors.JobCancelled` to unwind the workload.
    Cancellation is therefore *cooperative*: a queued job dies
    instantly, a running job dies at its next shard boundary.
    """

    #: Real controls are active; the :data:`NULL_CONTROL` stub is not,
    #: so runners can skip wrapping work in progress calls when nobody
    #: is listening.
    active = True

    def __init__(self, job: "Job") -> None:
        self.job = job

    def check(self) -> None:
        """Raise :class:`JobCancelled` if the job should stop now."""
        job = self.job
        if job.cancel_requested:
            raise JobCancelled(f"job {job.job_id} cancelled")
        if job.deadline_s is not None \
                and time.time() - job.submitted_at > job.deadline_s:
            job.cancel_requested = True
            raise JobCancelled(
                f"job {job.job_id} exceeded its {job.deadline_s}s "
                "deadline while running")

    def progress(self, stage: str, **data) -> None:
        """Emit a ``shard-progress`` event, then :meth:`check`."""
        self.job.emit("shard-progress", stage=stage, **data)
        self.check()


class NullJobControl(JobControl):
    """The no-op control: never cancels, records nothing."""

    active = False

    def __init__(self) -> None:  # no job to carry
        pass

    def check(self) -> None:
        """Never raises."""

    def progress(self, stage: str, **data) -> None:
        """Discards the event."""


#: Shared stub for callers without a scheduler (plain :class:`JobQueue`
#: runs, direct runner calls in tests).
NULL_CONTROL = NullJobControl()


class _ControlledBackend:
    """Backend wrapper that makes every kernel launch a shard boundary.

    ``execute`` checks for cancellation *before* each launch and
    reports progress *after* it, so a multi-kernel workload (LeNet
    forward is ~a dozen launches) streams per-launch events and can be
    cancelled between launches without poisoning the worker.  The
    ``sanitize``/``tracer`` attributes pass through to the wrapped
    backend because both :class:`~repro.cuda.runtime.CudaRuntime` and
    :func:`_finish` reach for them.
    """

    name = "controlled"

    def __init__(self, inner, control: JobControl) -> None:
        self.inner = inner
        self.control = control

    @property
    def sanitize(self):
        """The wrapped backend's sanitizer (or ``None``)."""
        return getattr(self.inner, "sanitize", None)

    @property
    def tracer(self):
        """The wrapped backend's tracer (set by the owning runtime)."""
        from repro.trace.tracer import NULL_TRACER
        return getattr(self.inner, "tracer", NULL_TRACER)

    @tracer.setter
    def tracer(self, value) -> None:
        self.inner.tracer = value

    def execute(self, launch):
        """Run one launch between two cancellation points."""
        self.control.check()
        result = self.inner.execute(launch)
        self.control.progress(
            "launch", kernel=launch.kernel.name,
            instructions=result.instructions)
        return result

    def close(self) -> None:
        """Close the wrapped backend's worker pool, if it has one."""
        if hasattr(self.inner, "close"):
            self.inner.close()


# ---------------------------------------------------------------------------
# Workload runners
# ---------------------------------------------------------------------------
def _digest_allocations(runtime) -> str:
    """SHA-256 over every allocation's final bytes, in address order."""
    hasher = hashlib.sha256()
    gm = runtime.global_mem
    for base in sorted(gm.allocations):
        hasher.update(base.to_bytes(8, "little"))
        hasher.update(gm.read(base, gm.allocations[base]))
    return hasher.hexdigest()


def _make_backend(config: dict, control: JobControl = NULL_CONTROL):
    """Build the execution backend a job asked for.

    ``config["shards"]`` switches the launch path to the multiprocessing
    CTA fan-out; otherwise the in-process tier named by
    ``config["fast_mode"]`` (default megablock — the fast sweep tier).
    ``config["sanitize"]`` arms the shadow-state sanitizer on either
    path; its findings ride back on the job result.  An active
    *control* wraps the backend so every launch streams a progress
    event and observes cancellation (see :class:`_ControlledBackend`).
    """
    from repro.cuda.runtime import FunctionalBackend
    from repro.service.pool import ShardedFunctionalBackend
    fast_mode = config.get("fast_mode", "megablock")
    sanitize = bool(config.get("sanitize"))
    shards = config.get("shards")
    if shards:
        backend = ShardedFunctionalBackend(
            int(shards), fast_mode=fast_mode, sanitize=sanitize)
    else:
        backend = FunctionalBackend(fast_mode=fast_mode, sanitize=sanitize)
    if control.active:
        backend = _ControlledBackend(backend, control)
    return backend


def _finish(runtime, backend, workload: str, extra: dict) -> dict:
    """Synchronize, digest memory, and build the JSON-able job result."""
    runtime.synchronize()
    kernels: dict[str, int] = {}
    for profile in runtime.profiles:
        kernels[profile.name] = kernels.get(profile.name, 0) + 1
    result = {
        "workload": workload,
        "digest": _digest_allocations(runtime),
        "instructions": sum(p.result.instructions
                            for p in runtime.profiles),
        "launches": len(runtime.profiles),
        "kernels": kernels,
    }
    result.update(extra)
    sanitizer = getattr(backend, "sanitize", None)
    if sanitizer is not None:
        result["sanitize"] = {
            "findings": sanitizer.findings_list(),
            "counters": dict(sanitizer.counters),
        }
    if hasattr(backend, "close"):
        backend.close()
    return result


def run_saxpy(config: dict, seed: int,
              control: JobControl = NULL_CONTROL) -> dict:
    """A tiny single-kernel job (the smoke-test workload)."""
    from repro.cuda.runtime import CudaRuntime
    from repro.ptx.builder import PTXBuilder, f32
    n = int(config.get("n", 256))
    scale = float(config.get("scale", 2.0))
    backend = _make_backend(config, control)
    rt = CudaRuntime(backend=backend)
    b = PTXBuilder("saxpy", [("xs", "u64"), ("ys", "u64"), ("n", "u32")])
    xs = b.ld_param("u64", "xs")
    ys = b.ld_param("u64", "ys")
    count = b.ld_param("u32", "n")
    tid = b.global_tid_x()
    b.guard_tid_below(tid, count)
    x = b.reg("f32")
    y = b.reg("f32")
    b.ins("ld.global.f32", x, f"[{b.elem_addr(xs, tid)}]")
    b.ins("ld.global.f32", y, f"[{b.elem_addr(ys, tid)}]")
    b.ins("fma.rn.f32", y, x, f32(scale), y)
    b.ins("st.global.f32", f"[{b.elem_addr(ys, tid)}]", y)
    rt.load_ptx(b.build(), "service_saxpy")
    rng = np.random.default_rng(seed)
    xs_ptr = rt.upload_f32(rng.random(n, dtype=np.float32))
    ys_ptr = rt.upload_f32(rng.random(n, dtype=np.float32))
    rt.launch("saxpy", ((n + 63) // 64, 1, 1), (64, 1, 1),
              [xs_ptr, ys_ptr, n])
    return _finish(rt, backend, "saxpy", {"n": n})


def run_conv(config: dict, seed: int,
             control: JobControl = NULL_CONTROL) -> dict:
    """conv_sample forward convolutions over the requested algorithms."""
    from repro.cuda.runtime import CudaRuntime
    from repro.cudnn import ConvFwdAlgo
    from repro.workloads.conv_sample import ConvSample, ConvSampleConfig
    backend = _make_backend(config, control)
    rt = CudaRuntime(backend=backend)
    geometry = {name: int(config[name]) for name in
                ("batch", "channels", "height", "width", "filters")
                if name in config}
    sample = ConvSample(rt, ConvSampleConfig(seed=seed, **geometry))
    algo_names = config.get("algos", ["IMPLICIT_GEMM"])
    try:
        algos = [ConvFwdAlgo[name] for name in algo_names]
    except KeyError as exc:
        raise ServiceError(f"unknown conv algorithm {exc}") from exc
    for algo in algos:
        sample.run_forward(algo)
        control.progress("algo", algo=algo.name)
    return _finish(rt, backend, "conv", {"algos": list(algo_names)})


def run_lenet(config: dict, seed: int,
              control: JobControl = NULL_CONTROL) -> dict:
    """Reduced LeNet forward pass (the paper's MNIST net at CI scale)."""
    from repro.cuda.runtime import CudaRuntime
    from repro.cudnn import Cudnn, build_application_binary
    from repro.nn.lenet import LeNet, LeNetConfig
    backend = _make_backend(config, control)
    rt = CudaRuntime(backend=backend)
    rt.load_binary(build_application_binary())
    lenet_config = LeNetConfig.reduced()
    model = LeNet(Cudnn(rt), lenet_config)
    rng = np.random.default_rng(seed)
    images = rng.standard_normal(
        (int(config.get("images", 1)), lenet_config.in_channels,
         lenet_config.input_hw, lenet_config.input_hw)
        ).astype(np.float32)
    logits = model.forward(images)
    return _finish(rt, backend, "lenet",
                   {"logits_sha256": hashlib.sha256(
                       logits.tobytes()).hexdigest()})


#: Named workloads a job may submit.
REGISTRY = {
    "saxpy": run_saxpy,
    "conv": run_conv,
    "lenet": run_lenet,
}


# ---------------------------------------------------------------------------
# The queue
# ---------------------------------------------------------------------------
@dataclass
class Job:
    """One submission's full lifecycle record.

    The scheduler-era fields (priority, deadline, tenant, events, GPU
    assignment, cancellation, traceback) default to inert values so the
    plain :class:`JobQueue` keeps producing the PR-6 record shape with
    a few extra keys.
    """

    job_id: str
    key: str
    workload: str
    config: dict
    seed: int
    state: str = QUEUED
    memo_hit: bool = False
    result: dict | None = None
    error: str | None = None
    submitted_at: float = 0.0
    finished_at: float | None = None
    #: Higher runs first under the ``priority`` policy; default 0.
    priority: int = 0
    #: Wall-second budget from submission; ``None`` = no deadline.
    deadline_s: float | None = None
    #: Fair-share group; defaults to the workload name when unset.
    tenant: str | None = None
    #: Index of the simulated GPU the job ran on (``None`` if never
    #: assigned — memo hits and queued cancellations).
    gpu: int | None = None
    #: Wall time the scheduler handed the job to a GPU worker.
    assigned_at: float | None = None
    #: Set by :meth:`request_cancel`; observed at shard boundaries.
    cancel_requested: bool = False
    #: Full worker traceback when ``state == "error"`` — the structured
    #: failure signal operators read instead of a bare message.
    traceback: str | None = None
    #: Streaming progress events (queued/assigned/shard-progress/...).
    events: list = field(default_factory=list, repr=False)
    done: threading.Event = field(default_factory=threading.Event,
                                  repr=False)
    event_cond: threading.Condition = field(
        default_factory=threading.Condition, repr=False)

    @property
    def terminal(self) -> bool:
        """True once the job can never change state again."""
        return self.state in TERMINAL_STATES

    def emit(self, kind: str, **data) -> None:
        """Append one progress event and wake long-poll watchers.

        Events are monotonically sequenced dicts (``seq``, ``kind``,
        ``ts`` plus *data*); ``GET /api/jobs/<id>/events?since=N``
        serves the suffix from ``seq >= N``.
        """
        with self.event_cond:
            self.events.append({
                "seq": len(self.events), "kind": kind,
                "ts": time.time(), **data})
            self.event_cond.notify_all()

    def request_cancel(self) -> None:
        """Flag the job for cooperative cancellation (idempotent)."""
        if not self.cancel_requested and not self.terminal:
            self.cancel_requested = True
            self.emit("cancel-requested")

    def to_dict(self, *, with_result: bool = True) -> dict:
        """JSON-able job record (the REST ``/api/jobs/<id>`` shape)."""
        record = {
            "job_id": self.job_id,
            "key": self.key,
            "workload": self.workload,
            "config": self.config,
            "seed": self.seed,
            "state": self.state,
            "memo_hit": self.memo_hit,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
            "priority": self.priority,
            "deadline_s": self.deadline_s,
            "tenant": self.tenant,
            "gpu": self.gpu,
            "assigned_at": self.assigned_at,
            "cancel_requested": self.cancel_requested,
            "events_seen": len(self.events),
        }
        if self.error is not None:
            record["error"] = self.error
        if self.traceback is not None:
            record["traceback"] = self.traceback
        if with_result and self.result is not None:
            record["result"] = self.result
        return record


# ---------------------------------------------------------------------------
# Persistent memoization
# ---------------------------------------------------------------------------
class MemoTable:
    """The job memo table, optionally persisted to one JSON file.

    With a *path*, every completed result is written through with the
    same discipline as :mod:`repro.functional.kernelcache`: staged to a
    pid-unique temp file, published with an atomic ``os.replace``, and
    on load a corrupt / truncated / wrong-format file is **discarded
    and deleted**, never trusted — the memo is a cache, losing it only
    costs re-simulation.  This is what lets a thousand-job sweep
    survive a ``repro-serve`` restart: resubmitted configurations come
    back as instant memo hits.

    Without a *path* it is a plain in-memory dict (the
    :class:`JobQueue` default, and what tests use for hermeticity).
    """

    #: On-disk schema version; bump to invalidate old files.
    FORMAT = 1

    def __init__(self, path: str | None = None) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._entries: dict[str, dict] = {}
        #: True when a persisted table was successfully read back.
        self.loaded_from_disk = False
        if path is not None:
            self._load()

    def _discard(self) -> None:
        """Delete an unusable on-disk table (best effort)."""
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
        except FileNotFoundError:
            return
        except (OSError, ValueError):
            self._discard()
            return
        memo = doc.get("memo") if isinstance(doc, dict) else None
        if not isinstance(doc, dict) or doc.get("format") != self.FORMAT \
                or not isinstance(memo, dict):
            self._discard()
            return
        self._entries = {key: value for key, value in memo.items()
                         if isinstance(value, dict)}
        self.loaded_from_disk = True

    def _save_locked(self) -> None:
        """Atomic write-through (caller holds the lock).

        A failed write is swallowed: persistence is an optimisation and
        the in-memory table stays authoritative for this process.
        """
        directory = os.path.dirname(self.path) or "."
        temp_name = None
        try:
            os.makedirs(directory, exist_ok=True)
            fd, temp_name = tempfile.mkstemp(
                dir=directory, prefix=f".{os.getpid()}-", suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump({"format": self.FORMAT,
                           "memo": self._entries}, handle)
            os.replace(temp_name, self.path)
            temp_name = None
        except OSError:
            if temp_name is not None:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass

    def get(self, key: str) -> dict | None:
        """Cached result for *key*, or ``None``."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key: str, result: dict) -> None:
        """Record *key* -> *result*, writing through when persistent."""
        with self._lock:
            self._entries[key] = result
            if self.path is not None:
                self._save_locked()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class JobQueue:
    """Thread-pooled async execution with memoized results.

    Three submission outcomes, all returning instantly:

    * **memo hit** — the key has a completed result; the new job is
      born ``done`` with that result and ``memo_hit=True``.
    * **coalesced** — the key is queued/running right now; the new job
      completes when the leader does (also ``memo_hit=True``; the
      simulation runs once).
    * **fresh** — the job is queued for a worker thread.
    """

    def __init__(self, workers: int = 2,
                 registry: dict | None = None) -> None:
        self.registry = dict(registry or REGISTRY)
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._memo = MemoTable()
        self._leaders: dict[str, str] = {}     # key -> leader job_id
        self._followers: dict[str, list[str]] = {}
        self._seq = itertools.count(1)
        self._counters = {"submitted": 0, "executed": 0,
                          "memo_hits": 0, "coalesced": 0, "errors": 0}
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-job")

    # -- submission -----------------------------------------------------
    def submit(self, workload: str, config: dict | None = None,
               seed: int = 0) -> Job:
        """Queue one job and return its record immediately."""
        if workload not in self.registry:
            raise ServiceError(
                f"unknown workload {workload!r}; "
                f"known: {sorted(self.registry)}")
        config = dict(config or {})
        key = job_key(workload, config, seed)
        with self._lock:
            job = Job(job_id=f"job-{next(self._seq):06d}", key=key,
                      workload=workload, config=config, seed=int(seed),
                      submitted_at=time.time())
            self._jobs[job.job_id] = job
            self._order.append(job.job_id)
            self._counters["submitted"] += 1
            cached = self._memo.get(key)
            if cached is not None:
                job.state = DONE
                job.memo_hit = True
                job.result = cached
                job.finished_at = time.time()
                job.done.set()
                self._counters["memo_hits"] += 1
                return job
            leader = self._leaders.get(key)
            if leader is not None:
                job.memo_hit = True
                self._followers.setdefault(key, []).append(job.job_id)
                self._counters["coalesced"] += 1
                return job
            self._leaders[key] = job.job_id
        self._executor.submit(self._run, job.job_id)
        return job

    # -- execution ------------------------------------------------------
    def _run(self, job_id: str) -> None:
        """Worker-thread body: execute one leader job to completion."""
        job = self._jobs[job_id]
        with self._lock:
            job.state = RUNNING
        try:
            runner = self.registry[job.workload]
            result = runner(job.config, job.seed)
        except Exception as exc:  # a failed job must never kill a worker
            self._complete(job, error=f"{type(exc).__name__}: {exc}",
                           traceback=traceback_module.format_exc())
        else:
            self._complete(job, result=result)

    def _complete(self, job: Job, *, result: dict | None = None,
                  error: str | None = None,
                  traceback: str | None = None) -> None:
        """Close the leader and every coalesced follower together.

        On failure the worker traceback rides onto every closing record
        so the REST job record carries the structured failure signal,
        not just a one-line message.
        """
        now = time.time()
        with self._lock:
            followers = self._followers.pop(job.key, [])
            self._leaders.pop(job.key, None)
            closing = [job] + [self._jobs[jid] for jid in followers]
            for record in closing:
                record.finished_at = now
                if error is None:
                    record.state = DONE
                    record.result = result
                else:
                    record.state = ERROR
                    record.error = error
                    record.traceback = traceback
            if error is None:
                self._memo.put(job.key, result)
                self._counters["executed"] += 1
            else:
                self._counters["errors"] += 1 + len(followers)
        for record in closing:
            record.done.set()

    # -- observation ----------------------------------------------------
    def _get(self, job_id: str) -> Job:
        """Look up a job record or raise the typed unknown-id error."""
        job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job id {job_id!r}")
        return job

    def status(self, job_id: str) -> dict:
        """Full job record (result included once done)."""
        return self._get(job_id).to_dict()

    def poll(self, job_id: str) -> str:
        """Just the lifecycle state, non-blocking."""
        return self._get(job_id).state

    def result(self, job_id: str, timeout: float | None = None) -> dict:
        """Block until the job finishes; raise on error or timeout."""
        job = self._get(job_id)
        if not job.done.wait(timeout):
            raise TimeoutError(
                f"job {job_id} still {job.state} after {timeout}s")
        if job.state == ERROR:
            raise ServiceError(f"job {job_id} failed: {job.error}")
        assert job.result is not None
        return job.result

    def jobs(self) -> list[dict]:
        """All submissions, oldest first, without result payloads."""
        return [self._jobs[jid].to_dict(with_result=False)
                for jid in self._order]

    def stats(self) -> dict:
        """Flat counters (the ``/api/stats`` shape)."""
        with self._lock:
            counters = dict(self._counters)
        counters["memo_entries"] = len(self._memo)
        counters["jobs"] = len(self._jobs)
        return counters

    def shutdown(self, wait: bool = True) -> None:
        """Stop the worker pool (queued jobs finish when ``wait``)."""
        self._executor.shutdown(wait=wait)
