"""Checkpoint and resume flows (paper Figure 5).

Checkpoint flow (functional mode):
    kernels with ordinal < x  -> executed normally
    kernel x, CTAs < M        -> executed normally
    kernel x, CTAs M .. M+t   -> y instructions per warp, then Data1
    kernel x, CTAs > M+t      -> not executed
    kernels with ordinal > x  -> not executed
    global memory             -> Data2 snapshot

Resume flow (functional *or* performance mode):
    kernels with ordinal < x  -> skipped (Data2 already restored)
    kernel x, CTAs < M        -> skipped
    kernel x, CTAs M .. M+t   -> Data1 restored, executed to completion
    kernel x, CTAs > M+t      -> executed normally
    kernels with ordinal > x  -> executed normally

Both flows are backends plugged into the CUDA runtime; the workload
(host program) is simply re-run, which is exactly how GPGPU-Sim's
checkpointing replays the application.
"""

from __future__ import annotations

from repro.cuda.runtime import KernelRunResult
from repro.functional.executor import FunctionalEngine, RunStats
from repro.functional.state import CTAState, LaunchContext
from repro.checkpoint.state import Checkpoint, capture_cta, restore_cta
from repro.errors import CheckpointError
from repro.trace.tracer import NULL_TRACER


class CheckpointingBackend:
    """Functional-mode backend that captures a checkpoint at
    (kernel ``x``, CTA ``M``, ``t`` extra partial CTAs, ``y``
    instructions per warp)."""

    name = "checkpoint"

    def __init__(self, kernel_ordinal: int, first_cta: int,
                 partial_ctas: int = 1,
                 warp_instruction_budget: int = 32) -> None:
        if partial_ctas < 1:
            raise CheckpointError("need at least one partial CTA")
        self.x = kernel_ordinal
        self.m = first_cta
        self.t = partial_ctas
        self.y = warp_instruction_budget
        self._ordinal = 0
        self.checkpoint: Checkpoint | None = None
        #: Set by the owning CudaRuntime when tracing is on.
        self.tracer = NULL_TRACER

    @property
    def taken(self) -> bool:
        return self.checkpoint is not None

    def execute(self, launch: LaunchContext) -> KernelRunResult:
        ordinal = self._ordinal
        self._ordinal += 1
        if self.taken or ordinal > self.x:
            return KernelRunResult()  # past the checkpoint: skip
        engine = FunctionalEngine(launch)
        stats = RunStats()
        if ordinal < self.x:
            stats = engine.run()
            return KernelRunResult(instructions=stats.instructions)
        # Kernel x: the checkpoint kernel.
        checkpoint = Checkpoint(
            kernel_ordinal=self.x, first_cta=self.m,
            partial_ctas=self.t, warp_instruction_budget=self.y,
            kernel_name=launch.kernel.name, launch_count=self._ordinal)
        limit = min(self.m, launch.num_ctas)
        for cta_linear in range(limit):
            engine.run_cta(CTAState(launch, cta_linear), stats)
        last_partial = min(self.m + self.t, launch.num_ctas)
        for cta_linear in range(self.m, last_partial):
            cta = CTAState(launch, cta_linear)
            engine.run_cta(cta, stats, max_warp_instructions=self.y)
            checkpoint.cta_snapshots.append(capture_cta(cta))
        checkpoint.global_memory = launch.global_mem.snapshot()
        self.checkpoint = checkpoint
        if self.tracer.enabled:
            self.tracer.instant(
                f"checkpoint:save:{launch.kernel.name}", cat="checkpoint",
                args={"kernel_ordinal": self.x, "first_cta": self.m,
                      "partial_ctas": len(checkpoint.cta_snapshots),
                      "warp_instruction_budget": self.y,
                      "instructions": stats.instructions})
        return KernelRunResult(instructions=stats.instructions)


class ResumeBackend:
    """Backend resuming from a checkpoint, delegating post-checkpoint
    kernels to an inner (functional or timing) backend."""

    name = "resume"

    def __init__(self, checkpoint: Checkpoint, inner) -> None:
        self.checkpoint = checkpoint
        self.inner = inner
        self._ordinal = 0
        self._restored = False
        #: Set by the owning CudaRuntime when tracing is on.
        self.tracer = NULL_TRACER

    def execute(self, launch: LaunchContext) -> KernelRunResult:
        ordinal = self._ordinal
        self._ordinal += 1
        cp = self.checkpoint
        if ordinal < cp.kernel_ordinal:
            return KernelRunResult()  # skipped; Data2 covers its effects
        if ordinal == cp.kernel_ordinal:
            if launch.kernel.name != cp.kernel_name:
                raise CheckpointError(
                    f"resume mismatch: kernel #{ordinal} is "
                    f"{launch.kernel.name!r}, checkpoint was taken in "
                    f"{cp.kernel_name!r}")
            launch.global_mem.restore(cp.global_memory)
            self._restored = True
            if self.tracer.enabled:
                self.tracer.instant(
                    f"checkpoint:restore:{launch.kernel.name}",
                    cat="checkpoint",
                    args={"kernel_ordinal": cp.kernel_ordinal,
                          "first_cta": cp.first_cta,
                          "ctas_restored": len(cp.cta_snapshots)})
            return self._resume_kernel(launch)
        if not self._restored:
            raise CheckpointError(
                "resume reached a later kernel before the checkpoint "
                "kernel; was the workload replayed identically?")
        if (self.tracer.enabled
                and getattr(self.inner, "tracer", None) is NULL_TRACER):
            self.inner.tracer = self.tracer
        return self.inner.execute(launch)

    def _resume_kernel(self, launch: LaunchContext) -> KernelRunResult:
        cp = self.checkpoint
        premade = {snap.cta_linear: restore_cta(launch, snap)
                   for snap in cp.cta_snapshots}
        if hasattr(self.inner, "gpu"):
            # Performance mode: the timing model takes over mid-kernel.
            stats, samples = self.inner.gpu.simulate(
                launch, first_cta=cp.first_cta, premade_ctas=premade)
            self.inner.kernel_stats.append(stats)
            return KernelRunResult(instructions=stats.warp_instructions,
                                   cycles=stats.cycles, samples=samples)
        engine = FunctionalEngine(launch)
        stats = RunStats()
        for cta_linear in range(cp.first_cta, launch.num_ctas):
            cta = premade.get(cta_linear) or CTAState(launch, cta_linear)
            if not cta.finished:
                engine.run_cta(cta, stats)
        return KernelRunResult(instructions=stats.instructions)
