"""Checkpoint state containers and (de)serialisation.

Data1 and Data2 follow the paper's Figure 5 exactly:

* **Data1** — "Register file and local memory per thread, SIMT stack per
  warp, Shared memory per CTA" for the partially executed CTAs
  M .. M+t of kernel x.
* **Data2** — "Global memory per Kernel": the full global-memory image
  at the checkpoint.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import CheckpointError
from repro.functional.simt import SimtStack
from repro.functional.state import CTAState, LaunchContext

_FORMAT_VERSION = 2


@dataclass
class WarpSnapshot:
    regs: list[dict[str, int]]
    simt: list[tuple[int, int, int]]
    at_barrier: bool
    instructions_executed: int


@dataclass
class CTASnapshot:
    cta_linear: int
    shared: bytes
    locals_: dict[int, bytes]
    warps: list[WarpSnapshot]


@dataclass
class Checkpoint:
    """Everything needed to resume at (kernel x, CTA M)."""

    kernel_ordinal: int              # x
    first_cta: int                   # M
    partial_ctas: int                # t + 1 (number of captured CTAs)
    warp_instruction_budget: int     # y
    kernel_name: str = ""
    global_memory: dict = field(default_factory=dict)   # Data2
    cta_snapshots: list[CTASnapshot] = field(default_factory=list)  # Data1
    launch_count: int = 0
    format_version: int = _FORMAT_VERSION

    # -- persistence ------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Persist atomically (temp file + ``os.replace``).

        A crash mid-save must never leave a truncated file at *path* —
        a later :meth:`load` would have nothing to detect it by except
        a decode error, and the sharded service treats checkpoint files
        as durable job state.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{os.getpid()}-", suffix=".ckpt.tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(self, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def load(cls, path: str | Path) -> "Checkpoint":
        path = Path(path)
        if not path.exists():
            raise CheckpointError(f"no checkpoint at {path}")
        try:
            with path.open("rb") as handle:
                checkpoint = pickle.load(handle)
        except CheckpointError:
            raise
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError, OSError) as exc:
            # A truncated or partially written file surfaces as one of
            # pickle's many raw decode errors; wrap them all in a typed
            # error naming the offending path.
            raise CheckpointError(
                f"corrupt or truncated checkpoint at {path}: "
                f"{type(exc).__name__}: {exc}") from exc
        if not isinstance(checkpoint, cls):
            raise CheckpointError(f"{path} is not a Checkpoint file")
        if checkpoint.format_version != _FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint format {checkpoint.format_version} != "
                f"{_FORMAT_VERSION}")
        return checkpoint


def capture_cta(cta: CTAState) -> CTASnapshot:
    """Capture Data1 for one partially executed CTA."""
    warps = [
        WarpSnapshot(
            regs=[dict(regs) for regs in warp.regs],
            simt=warp.simt.snapshot(),
            at_barrier=warp.at_barrier,
            instructions_executed=warp.instructions_executed,
        )
        for warp in cta.warps
    ]
    return CTASnapshot(
        cta_linear=cta.cta_linear,
        shared=bytes(cta.shared.data),
        locals_={tid: bytes(arena.data)
                 for tid, arena in cta._locals.items()},
        warps=warps,
    )


def restore_cta(launch: LaunchContext, snapshot: CTASnapshot) -> CTAState:
    """Recreate a CTA and load its Data1.

    All compatibility checks run *before* any state is written, so an
    incompatible snapshot raises without leaving a half-restored CTA (or
    a LaunchContext whose shared/local arenas were partially filled)
    behind.
    """
    cta = CTAState(launch, snapshot.cta_linear)
    if len(snapshot.warps) != len(cta.warps):
        raise CheckpointError(
            f"CTA {snapshot.cta_linear}: warp count mismatch "
            f"({len(snapshot.warps)} saved, {len(cta.warps)} expected)")
    if len(snapshot.shared) != len(cta.shared.data):
        raise CheckpointError(
            f"CTA {snapshot.cta_linear}: shared memory size mismatch "
            f"({len(snapshot.shared)} saved, {len(cta.shared.data)} "
            "expected)")
    cta.shared.data[:] = snapshot.shared
    for tid, blob in snapshot.locals_.items():
        arena = cta.local_for(int(tid))
        arena.data[:len(blob)] = blob
    for warp, saved in zip(cta.warps, snapshot.warps):
        warp.regs = [dict(regs) for regs in saved.regs]
        warp.simt = SimtStack.restore(saved.simt)
        warp.at_barrier = saved.at_barrier
        warp.instructions_executed = saved.instructions_executed
    return cta
