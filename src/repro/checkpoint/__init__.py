"""Checkpoint/resume support (paper Section III-F)."""

from repro.checkpoint.manager import CheckpointingBackend, ResumeBackend
from repro.checkpoint.state import (
    Checkpoint, CTASnapshot, WarpSnapshot, capture_cta, restore_cta)

__all__ = [
    "CTASnapshot", "Checkpoint", "CheckpointingBackend", "ResumeBackend",
    "WarpSnapshot", "capture_cta", "restore_cta",
]
