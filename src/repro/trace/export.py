"""Trace exporters: Chrome-trace JSON and a plain-text timeline.

The JSON form is the `Trace Event Format`_ consumed by Perfetto and
``chrome://tracing``: a ``traceEvents`` array where every event carries
``ph``/``ts``/``pid``/``tid``, plus ``M`` (metadata) events naming the
process and per-stream tracks.  Simulated time maps directly onto the
microsecond ``ts`` axis (1 cycle = 1 us on screen).

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.trace.tracer import TraceEvent, Tracer

#: Phases a conforming trace may contain.
_KNOWN_PHASES = {"B", "E", "X", "i", "C", "M"}


def chrome_trace_events(tracer: Tracer) -> list[dict]:
    """Serialise a tracer into Chrome-trace event dicts (metadata
    first, then the recorded events in order)."""
    out: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": tracer.pid, "tid": 0,
        "ts": 0, "args": {"name": tracer.process_name},
    }]
    for tid, name in sorted(tracer.track_names.items()):
        out.append({
            "name": "thread_name", "ph": "M", "pid": tracer.pid,
            "tid": tid, "ts": 0, "args": {"name": name},
        })
    for event in tracer.events:
        out.append(_event_dict(event))
    return out


def _event_dict(event: TraceEvent) -> dict:
    record: dict = {
        "name": event.name, "ph": event.ph, "ts": event.ts,
        "pid": event.pid, "tid": event.tid,
    }
    if event.cat:
        record["cat"] = event.cat
    if event.dur is not None:
        record["dur"] = event.dur
    args = dict(event.args) if event.args else {}
    args["wall_s"] = round(event.wall, 6)
    record["args"] = args
    if event.ph == "i":
        record["s"] = "t"  # instant scope: thread
    return record


def write_chrome_trace(path: str | Path, tracer: Tracer,
                       *, finish: bool = True) -> Path:
    """Finalize *tracer* (close open spans) and write Chrome JSON."""
    if finish:
        tracer.finish()
    path = Path(path)
    payload = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.trace", "clock": "sim-cycles"},
    }
    path.write_text(json.dumps(payload, indent=1) + "\n")
    return path


def load_chrome_trace(path: str | Path) -> list[dict]:
    """Read a Chrome-trace file back into its event dicts.

    Accepts both the object form (``{"traceEvents": [...]}``) and the
    bare-array form.
    """
    data = json.loads(Path(path).read_text())
    if isinstance(data, dict):
        events = data.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError(f"{path}: no traceEvents array")
        return events
    if isinstance(data, list):
        return data
    raise ValueError(f"{path}: not a Chrome trace")


def validate_chrome_events(events: list[dict]) -> list[str]:
    """Schema-check event dicts; returns a list of problems (empty =
    valid).  Checks the acceptance contract: every event has
    ``ph``/``ts``/``pid``/``tid``, phases are known, and B/E events are
    balanced (and properly nested) per (pid, tid) track.
    """
    problems: list[str] = []
    stacks: dict[tuple, list[str]] = {}
    for index, event in enumerate(events):
        for key in ("ph", "ts", "pid", "tid"):
            if key not in event:
                problems.append(f"event {index}: missing {key!r}")
        ph = event.get("ph")
        if ph not in _KNOWN_PHASES:
            problems.append(f"event {index}: unknown phase {ph!r}")
            continue
        track = (event.get("pid"), event.get("tid"))
        if ph == "B":
            stacks.setdefault(track, []).append(event.get("name", "?"))
        elif ph == "E":
            stack = stacks.get(track)
            if not stack:
                problems.append(
                    f"event {index}: E with no open B on track {track}")
            else:
                opened = stack.pop()
                name = event.get("name")
                if name is not None and name != opened:
                    problems.append(
                        f"event {index}: E({name!r}) closes B({opened!r})"
                        f" on track {track}")
        elif ph == "X" and "dur" not in event:
            problems.append(f"event {index}: X without dur")
    for track, stack in stacks.items():
        if stack:
            problems.append(
                f"track {track}: unbalanced B events {stack}")
    return problems


def render_text_timeline(events: list[dict], *,
                         max_events: int | None = None) -> str:
    """A human-readable timeline of the trace (one line per event)."""
    lines = ["# ts(cycles)    track  ev  name"]
    shown = 0
    for event in sorted(
            (e for e in events if e.get("ph") != "M"),
            key=lambda e: (e.get("ts", 0), e.get("tid", 0))):
        if max_events is not None and shown >= max_events:
            lines.append(f"... ({len(events)} events total)")
            break
        ph = event.get("ph", "?")
        name = event.get("name", "?")
        tid = event.get("tid", 0)
        ts = event.get("ts", 0)
        detail = ""
        if ph == "X":
            detail = f" dur={event.get('dur')}"
        elif ph == "C":
            args = {k: v for k, v in (event.get("args") or {}).items()
                    if k != "wall_s"}
            detail = f" {args}"
        lines.append(f"{ts:12.1f}  tid={tid:<4d} {ph:>2}  {name}{detail}")
        shown += 1
    return "\n".join(lines)
