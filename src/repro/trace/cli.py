"""The ``repro-trace`` command line tool.

Summarize, validate or convert a Chrome-trace JSON produced by
:mod:`repro.trace`::

    repro-trace summary results/lenet_trace.json
    repro-trace validate results/lenet_trace.json
    repro-trace convert results/lenet_trace.json --format text

``summary`` prints the event census plus the NVProf-style per-kernel
table reconstructed *from the trace* (the bridge path — no live
runtime involved); ``validate`` exits non-zero if the file violates
the Chrome-trace schema contract; ``convert`` renders a text timeline.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from pathlib import Path

from repro.trace.bridge import kernel_records_from_events
from repro.trace.export import (
    load_chrome_trace, render_text_timeline, validate_chrome_events)


def _load(path: str) -> list[dict]:
    try:
        return load_chrome_trace(path)
    except (OSError, ValueError) as error:
        raise SystemExit(f"repro-trace: {error}")


def _cmd_validate(args: argparse.Namespace) -> int:
    events = _load(args.trace)
    problems = validate_chrome_events(events)
    if problems:
        for problem in problems:
            print(f"INVALID {problem}")
        return 1
    print(f"ok: {len(events)} events, schema valid, B/E balanced")
    return 0


def _print_megablock_census(events: list[dict]) -> None:
    """Why did kernels leave the fast tier?  Census of the engine's
    ``megablock-fallback:<kernel>`` / ``megablock-bailout:<kernel>``
    instants (reasons ride in ``args``) plus the final value of the
    ``megablock`` tier-event counter series."""
    fallbacks: Counter = Counter()
    bailouts: Counter = Counter()
    reasons: Counter = Counter()
    last_counter: dict | None = None
    for event in events:
        name = event.get("name", "")
        if event.get("ph") == "i":
            if name.startswith("megablock-fallback:"):
                fallbacks[name.split(":", 1)[1]] += 1
                for reason in (event.get("args") or {}).get(
                        "reasons", []):
                    reasons[str(reason)] += 1
            elif name.startswith("megablock-bailout:"):
                bailouts[name.split(":", 1)[1]] += 1
        elif event.get("ph") == "C" and name == "megablock":
            last_counter = event.get("args") or {}
    if fallbacks:
        print("  megablock fallbacks: "
              + ", ".join(f"{k}={n}"
                          for k, n in sorted(fallbacks.items())))
        for reason, count in reasons.most_common(5):
            print(f"    reason x{count}: {reason}")
    if bailouts:
        print("  megablock bailouts: "
              + ", ".join(f"{k}={n}"
                          for k, n in sorted(bailouts.items())))
    if last_counter:
        print("  megablock tier events: "
              + ", ".join(f"{k}={v}"
                          for k, v in sorted(last_counter.items())))


def _cmd_summary(args: argparse.Namespace) -> int:
    events = _load(args.trace)
    problems = validate_chrome_events(events)
    phases = Counter(e.get("ph", "?") for e in events)
    tracks = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            tracks[event["tid"]] = (event.get("args") or {}).get("name")
    print(f"{args.trace}: {len(events)} events "
          f"({', '.join(f'{p}={n}' for p, n in sorted(phases.items()))})")
    if problems:
        print(f"  WARNING: {len(problems)} schema problems "
              f"(run `repro-trace validate`)")
    for tid, name in sorted(tracks.items()):
        print(f"  track {tid}: {name}")
    cache = Counter()
    for event in events:
        if event.get("cat") == "kernelcache" and event.get("ph") == "i":
            parts = event.get("name", "").split(":")
            if len(parts) >= 2:
                cache[parts[1]] += 1
    if cache:
        print("  kernel cache: "
              + ", ".join(f"{k}={n}" for k, n in sorted(cache.items())))
    _print_megablock_census(events)
    records = kernel_records_from_events(events)
    if not records:
        print("no kernel slices in trace")
        return 0
    span = max(r.end for r in records) - min(r.start for r in records)
    print(f"{len(records)} kernel launches over {span:.0f} sim units")
    from repro.harness.profiler import NVProfLike
    print(NVProfLike(records).render(top=args.top))
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    events = _load(args.trace)
    if args.format == "text":
        rendered = render_text_timeline(events, max_events=args.max_events)
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown format {args.format!r}")
    if args.output:
        Path(args.output).write_text(rendered + "\n")
        print(f"wrote {args.output}")
    else:
        print(rendered)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Summarize, validate or convert a repro.trace "
                    "Chrome-trace JSON file.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_summary = sub.add_parser(
        "summary", help="event census + per-kernel NVProf table")
    p_summary.add_argument("trace")
    p_summary.add_argument("--top", type=int, default=10,
                           help="kernel rows to show (default 10)")
    p_summary.set_defaults(func=_cmd_summary)

    p_validate = sub.add_parser(
        "validate", help="schema-check the trace (exit 1 if invalid)")
    p_validate.add_argument("trace")
    p_validate.set_defaults(func=_cmd_validate)

    p_convert = sub.add_parser(
        "convert", help="render the trace in another format")
    p_convert.add_argument("trace")
    p_convert.add_argument("--format", choices=["text"], default="text")
    p_convert.add_argument("--max-events", type=int, default=None)
    p_convert.add_argument("-o", "--output", default=None)
    p_convert.set_defaults(func=_cmd_convert)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
