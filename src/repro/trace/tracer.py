"""Span/counter instrumentation core.

A :class:`Tracer` records a flat, append-only list of
:class:`TraceEvent` records — Chrome-trace-shaped (``ph``/``ts``/
``pid``/``tid``) so export is a serialisation, not a transformation.
Spans nest per track (``tid``): ``begin``/``end`` pairs are balanced by
a per-track stack, and the context-manager form makes misnesting
impossible.  Every event is stamped with monotonic simulated time from
the shared :class:`~repro.trace.clock.SimClock` *and* host wall time,
so a trace supports both "what overlapped what" (sim) and "what was
slow to simulate" (wall) questions.

Track layout (the Perfetto view):

* ``TID_API`` — cuDNN/cuBLAS host API calls.
* ``TID_RUNTIME`` — runtime operations (mallocs, memcpys, syncs).
* ``stream_tid(stream_id)`` — one track per CUDA stream; kernel
  executions are slices, event record/wait ops are instants.

The disabled path is :data:`NULL_TRACER`, a singleton whose methods do
nothing.  Instrumented code guards larger work with ``tracer.enabled``;
the functional superblock loop is not instrumented at all, so a
disabled tracer costs nothing on the hot path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.trace.clock import SimClock

#: Well-known tracks.  Streams get ``stream_tid(stream_id)``; simulated
#: GPU workers of the cluster scheduler get ``gpu_tid(index)``; shard
#: workers of the simulation service get ``shard_tid(index)``.
TID_API = 1
TID_RUNTIME = 2
_TID_STREAM_BASE = 10
_TID_GPU_BASE = 500
_TID_SHARD_BASE = 1000


def stream_tid(stream_id: int) -> int:
    """Track id for a CUDA stream (stream 0 = the default stream)."""
    return _TID_STREAM_BASE + stream_id


def gpu_tid(gpu_index: int) -> int:
    """Track id for one simulated GPU worker of the cluster scheduler.

    Scheduler tracks sit between the stream range and the shard range,
    so a single trace can show the cluster view (one slice per job on
    each GPU track, plus the queue-depth counter series) above the
    per-shard execution detail.  Scheduler events are stamped with
    *wall* seconds since the scheduler started rather than simulated
    time — the scheduler multiplexes many independent runtimes, each
    with its own :class:`~repro.trace.clock.SimClock`.
    """
    return _TID_GPU_BASE + gpu_index


def shard_tid(shard_index: int) -> int:
    """Track id for one shard worker of the sharded simulation service.

    Kept well clear of the stream range so a merged trace shows the
    parent's stream tracks and the per-worker shard tracks side by
    side.
    """
    return _TID_SHARD_BASE + shard_index


@dataclass
class TraceEvent:
    """One Chrome-trace-shaped event."""

    name: str
    ph: str                    # "B" | "E" | "X" | "i" | "C"
    ts: float                  # simulated time
    pid: int
    tid: int
    cat: str = ""
    args: dict | None = None
    dur: float | None = None   # "X" (complete) events only
    wall: float = 0.0          # host wall-clock stamp (perf_counter)


@dataclass
class Span:
    """An open span, returned by :meth:`Tracer.begin`."""

    name: str
    tid: int
    cat: str
    begin_ts: float
    begin_index: int           # index of the "B" event in Tracer.events
    args: dict | None = None
    end_ts: float | None = None

    @property
    def closed(self) -> bool:
        return self.end_ts is not None

    @property
    def duration(self) -> float:
        if self.end_ts is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end_ts - self.begin_ts


class _NullSpanContext:
    """Reusable no-op context manager for ``NULL_TRACER.span(...)``."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpanContext()


class NullTracer:
    """The no-op fast path: every method does nothing.

    ``enabled`` is False so instrumentation sites can skip argument
    construction entirely; calling the methods anyway is also safe.
    """

    enabled = False
    default_tid = TID_RUNTIME
    cta_spans = False

    def begin(self, name, **kwargs):
        return None

    def end(self, **kwargs):
        return None

    def span(self, name, **kwargs):
        return _NULL_SPAN

    def instant(self, name, **kwargs):
        return None

    def complete(self, name, ts, dur, **kwargs):
        return None

    def counter(self, name, value, **kwargs):
        return None

    def name_track(self, tid, name):
        return None

    def attach_samples(self, key, samples):
        return None

    def push_default_tid(self, tid):
        return None

    def pop_default_tid(self):
        return None

    def finish(self):
        return None


#: The process-wide disabled tracer.  Identity-comparable: runtime code
#: uses ``tracer is NULL_TRACER`` to detect "tracing off".
NULL_TRACER = NullTracer()


class _SpanContext:
    __slots__ = ("tracer", "name", "kwargs")

    def __init__(self, tracer: "Tracer", name: str, kwargs: dict) -> None:
        self.tracer = tracer
        self.name = name
        self.kwargs = kwargs

    def __enter__(self) -> Span:
        return self.tracer.begin(self.name, **self.kwargs)

    def __exit__(self, *exc) -> bool:
        self.tracer.end(tid=self.kwargs.get("tid"))
        return False


class Tracer:
    """Records spans, instants and counters against a shared sim clock.

    Parameters
    ----------
    clock:
        The monotonic :class:`SimClock` to stamp events with.  Pass the
        runtime's clock so trace stamps and profiler/interval times are
        the same timeline; a fresh clock is created otherwise.
    pid:
        Chrome-trace process id for all events (one simulated device).
    cta_spans:
        Opt-in per-CTA spans from the functional engine.  Off by
        default: CTA scope is the highest-volume level and most traces
        only need kernel granularity.
    """

    enabled = True

    def __init__(self, clock: SimClock | None = None, *, pid: int = 1,
                 process_name: str = "repro-sim",
                 cta_spans: bool = False) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.pid = pid
        self.process_name = process_name
        self.cta_spans = cta_spans
        self.events: list[TraceEvent] = []
        self.spans: list[Span] = []
        self.track_names: dict[int, str] = {
            TID_API: "cuDNN API",
            TID_RUNTIME: "CUDA runtime",
        }
        #: Out-of-band payloads (e.g. SampleBlock objects) keyed by the
        #: caller — kept off the JSON export, used by the bridge.
        self.samples: dict[object, object] = {}
        self._stacks: dict[int, list[Span]] = {}
        self._default_tid_stack: list[int] = []
        self.default_tid = TID_RUNTIME
        self._wall0 = time.perf_counter()

    # -- time ----------------------------------------------------------
    def _ts(self, ts: float | None) -> float:
        return self.clock.now if ts is None else float(ts)

    def _wall(self) -> float:
        return time.perf_counter() - self._wall0

    def _tid(self, tid: int | None) -> int:
        return self.default_tid if tid is None else tid

    # -- default-track scoping -----------------------------------------
    def push_default_tid(self, tid: int) -> None:
        """Temporarily route un-tid'd events to *tid* (kernel scope)."""
        self._default_tid_stack.append(self.default_tid)
        self.default_tid = tid

    def pop_default_tid(self) -> None:
        self.default_tid = self._default_tid_stack.pop()

    # -- spans ---------------------------------------------------------
    def begin(self, name: str, *, tid: int | None = None, cat: str = "",
              args: dict | None = None, ts: float | None = None) -> Span:
        tid = self._tid(tid)
        stamp = self._ts(ts)
        span = Span(name=name, tid=tid, cat=cat, begin_ts=stamp,
                    begin_index=len(self.events), args=args)
        self.events.append(TraceEvent(
            name=name, ph="B", ts=stamp, pid=self.pid, tid=tid, cat=cat,
            args=args, wall=self._wall()))
        self._stacks.setdefault(tid, []).append(span)
        self.spans.append(span)
        return span

    def end(self, *, tid: int | None = None, ts: float | None = None,
            args: dict | None = None) -> Span:
        tid = self._tid(tid)
        stack = self._stacks.get(tid)
        if not stack:
            raise ValueError(f"end() with no open span on track {tid}")
        span = stack.pop()
        stamp = self._ts(ts)
        span.end_ts = stamp
        if args:
            span.args = {**(span.args or {}), **args}
        self.events.append(TraceEvent(
            name=span.name, ph="E", ts=stamp, pid=self.pid, tid=tid,
            cat=span.cat, args=args, wall=self._wall()))
        return span

    def span(self, name: str, **kwargs) -> _SpanContext:
        """``with tracer.span("name"): ...`` — begin/end as a context."""
        return _SpanContext(self, name, kwargs)

    def open_depth(self, tid: int | None = None) -> int:
        """How many spans are currently open on a track."""
        return len(self._stacks.get(self._tid(tid), ()))

    # -- other phases --------------------------------------------------
    def complete(self, name: str, ts: float, dur: float, *,
                 tid: int | None = None, cat: str = "",
                 args: dict | None = None) -> None:
        """A pre-measured slice (Chrome ``X`` event)."""
        self.events.append(TraceEvent(
            name=name, ph="X", ts=ts, pid=self.pid, tid=self._tid(tid),
            cat=cat, args=args, dur=dur, wall=self._wall()))

    def instant(self, name: str, *, tid: int | None = None, cat: str = "",
                args: dict | None = None, ts: float | None = None) -> None:
        self.events.append(TraceEvent(
            name=name, ph="i", ts=self._ts(ts), pid=self.pid,
            tid=self._tid(tid), cat=cat, args=args, wall=self._wall()))

    def counter(self, name: str, value, *, ts: float | None = None,
                tid: int | None = None, cat: str = "metric") -> None:
        """A counter sample; ``value`` is a number or a {series: num}
        dict (Chrome renders multi-series counters stacked)."""
        if not isinstance(value, dict):
            value = {"value": float(value)}
        self.events.append(TraceEvent(
            name=name, ph="C", ts=self._ts(ts), pid=self.pid,
            tid=self._tid(tid), cat=cat, args=value, wall=self._wall()))

    # -- registry ------------------------------------------------------
    def name_track(self, tid: int, name: str) -> None:
        self.track_names[tid] = name

    # -- cross-process merge -------------------------------------------
    def ingest(self, events: list[TraceEvent], *, tid: int,
               track_name: str | None = None,
               ts_offset: float = 0.0) -> None:
        """Fold events recorded by another process onto one track.

        Shard workers run with their own :class:`Tracer` (own clock, own
        track ids); the parent re-homes every event onto *tid* and
        shifts sim stamps by *ts_offset* (normally the parent's clock
        reading when the shard was dispatched), producing one coherent
        Chrome trace.  Span pairing is preserved because each worker's
        stream of B/E events is already balanced per its own track and
        lands here on a single dedicated track, in order.
        """
        if track_name is not None:
            self.name_track(tid, track_name)
        for event in events:
            self.events.append(TraceEvent(
                name=event.name, ph=event.ph, ts=event.ts + ts_offset,
                pid=self.pid, tid=tid, cat=event.cat, args=event.args,
                dur=event.dur, wall=event.wall))

    def attach_samples(self, key: object, samples: object) -> None:
        """Associate an out-of-band payload (a SampleBlock) with a span
        key; consumed by :func:`repro.trace.bridge.figure_reports_from_tracer`."""
        self.samples[key] = samples

    def finish(self) -> None:
        """Close any spans still open (balances B/E for export)."""
        for tid, stack in self._stacks.items():
            while stack:
                self.end(tid=tid)

    # -- queries (tests & bridge) --------------------------------------
    def closed_spans(self, *, cat: str | None = None,
                     tid: int | None = None) -> list[Span]:
        return [s for s in self.spans if s.closed
                and (cat is None or s.cat == cat)
                and (tid is None or s.tid == tid)]
