"""Feed the existing reporting tools from a trace.

Before this module, :class:`repro.harness.profiler.NVProfLike` and
:mod:`repro.aerialvision.report` reached into a live
:class:`~repro.cuda.runtime.CudaRuntime` for their data.  The bridge
reconstructs the same inputs from trace events instead, so a trace file
— on disk or in memory — is the single source of truth for every
report:

* :func:`kernel_records_from_events` / :func:`profiles_from_trace`
  rebuild per-launch profile records from kernel slices; hand them to
  ``NVProfLike`` (or use ``NVProfLike.from_trace``) for the nvprof
  table.
* :func:`emit_sample_counters` re-emits a timing-model
  :class:`~repro.timing.stats.SampleBlock` as Chrome counter series
  (global IPC, DRAM utilisation/efficiency), aligned to the kernel's
  start on the shared clock.
* :func:`figure_reports_from_tracer` turns sample blocks attached to a
  live tracer into AerialVision :class:`FigureReport` bundles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.trace.tracer import Tracer

#: Category assigned by the runtime to kernel-execution slices.
KERNEL_CATEGORY = "kernel"


@dataclass
class TraceRunResult:
    """Mirror of :class:`repro.cuda.runtime.KernelRunResult` rebuilt
    from a kernel slice's args (kept import-cycle-free)."""

    instructions: int = 0
    cycles: int = 0
    stats: dict = field(default_factory=dict)


@dataclass
class TraceKernelRecord:
    """Profile-shaped record reconstructed from one kernel slice.

    Duck-compatible with :class:`repro.cuda.runtime.KernelProfile` as
    far as ``NVProfLike`` is concerned (name/start/end/result).
    """

    name: str
    start: float
    end: float
    result: TraceRunResult
    grid: tuple | None = None
    block: tuple | None = None

    @property
    def cycles(self) -> int:
        return self.result.cycles

    @property
    def instructions(self) -> int:
        return self.result.instructions


def kernel_records_from_events(events: list[dict]) -> list[TraceKernelRecord]:
    """Rebuild per-launch records from kernel B/E slices in *events*.

    Only events with ``cat == "kernel"`` participate; B/E pairs are
    matched per (pid, tid) track, so concurrent streams reconstruct
    correctly.  Slices whose E carries ``instructions``/``cycles`` args
    (the runtime always attaches them) yield exact profiles.
    """
    open_slices: dict[tuple, list[dict]] = {}
    records: list[TraceKernelRecord] = []
    for event in events:
        if event.get("cat") != KERNEL_CATEGORY:
            continue
        ph = event.get("ph")
        track = (event.get("pid"), event.get("tid"))
        if ph == "B":
            open_slices.setdefault(track, []).append(event)
        elif ph == "E":
            stack = open_slices.get(track)
            if not stack:
                raise ValueError(
                    f"kernel E without B on track {track}: "
                    f"{event.get('name')!r}")
            begin = stack.pop()
            args = {**(begin.get("args") or {}),
                    **(event.get("args") or {})}
            records.append(TraceKernelRecord(
                name=begin.get("name", "?"),
                start=float(begin.get("ts", 0.0)),
                end=float(event.get("ts", 0.0)),
                grid=tuple(args["grid"]) if "grid" in args else None,
                block=tuple(args["block"]) if "block" in args else None,
                result=TraceRunResult(
                    instructions=int(args.get("instructions", 0)),
                    cycles=int(args.get("cycles", 0)))))
        elif ph == "X":
            args = event.get("args") or {}
            start = float(event.get("ts", 0.0))
            records.append(TraceKernelRecord(
                name=event.get("name", "?"), start=start,
                end=start + float(event.get("dur", 0.0)),
                result=TraceRunResult(
                    instructions=int(args.get("instructions", 0)),
                    cycles=int(args.get("cycles", 0)))))
    leftovers = [s for stack in open_slices.values() for s in stack]
    if leftovers:
        raise ValueError(
            f"{len(leftovers)} kernel slices never closed "
            f"(first: {leftovers[0].get('name')!r})")
    records.sort(key=lambda r: r.start)
    return records


def profiles_from_trace(source) -> list[TraceKernelRecord]:
    """Kernel records from a :class:`Tracer`, an event list, or a
    Chrome-trace file path."""
    if isinstance(source, Tracer):
        from repro.trace.export import chrome_trace_events
        events = chrome_trace_events(source)
    elif isinstance(source, (str, bytes)) or hasattr(source, "read_text"):
        from repro.trace.export import load_chrome_trace
        events = load_chrome_trace(source)
    else:
        events = list(source)
    return kernel_records_from_events(events)


# ---------------------------------------------------------------------------
# SampleBlock -> counter series
# ---------------------------------------------------------------------------
def emit_sample_counters(tracer: Tracer, samples, t0: float, *,
                         tid: int | None = None,
                         prefix: str = "") -> int:
    """Re-emit a timing-model SampleBlock as Chrome counter series.

    One counter sample per interval bin, stamped ``t0 + bin*interval``
    on the same clock the spans use (``t0`` is the kernel's start).
    Emits ``ipc`` (global instructions/cycle), ``dram_util`` and
    ``dram_eff`` (both averaged over partitions).  Returns the number
    of counter events emitted.
    """
    interval = samples.interval
    ipc = samples.global_ipc_series()
    util = samples.dram_utilization_matrix()
    eff = samples.dram_efficiency_matrix()
    emitted = 0
    for b in range(len(ipc)):
        ts = t0 + b * interval
        tracer.counter(f"{prefix}ipc", round(float(ipc[b]), 4),
                       ts=ts, tid=tid)
        emitted += 1
        if util.size:
            tracer.counter(f"{prefix}dram_util",
                           round(float(util[:, b].mean()), 4),
                           ts=ts, tid=tid)
            tracer.counter(f"{prefix}dram_eff",
                           round(float(eff[:, b].mean()), 4),
                           ts=ts, tid=tid)
            emitted += 2
    return emitted


def figure_reports_from_tracer(tracer: Tracer) -> list:
    """AerialVision :class:`FigureReport` bundles for every kernel whose
    SampleBlock was attached to the tracer (timing backend runs)."""
    from repro.aerialvision.report import kernel_figures
    reports = []
    for key, samples in tracer.samples.items():
        name = key if isinstance(key, str) else str(key)
        reports.append(kernel_figures(name, samples))
    return reports
