"""Unified tracing & metrics for the whole simulator stack.

The paper's methodology is built on *seeing inside* the simulator —
AerialVision time-lapse views, NVProf-comparable statistics, and the
three-level divergence debugger all depend on knowing which API call
launched which kernels on which stream, and when.  :mod:`repro.trace`
is the cross-layer event timeline that ties those views together:

* :class:`SimClock` — one injected monotonic simulated-time source,
  shared by the runtime's kernel timeline, the timing model's interval
  sampler and every trace stamp, so bins and spans can never disagree.
* :class:`Tracer` — nested spans (process / stream / kernel / CTA
  scope), instant annotations and a counter registry, stamped with both
  sim-time and wall-time.
* :data:`NULL_TRACER` — the no-op fast path.  A disabled tracer is a
  singleton whose methods do nothing; the functional core's superblock
  loop contains no tracer checks at all, so tracing off costs nothing.
* :mod:`repro.trace.export` — Chrome-trace JSON (loads in Perfetto /
  ``chrome://tracing``; streams become tracks, kernels become slices)
  and a plain-text timeline.
* :mod:`repro.trace.bridge` — feeds :class:`repro.harness.profiler.
  NVProfLike` tables and :mod:`repro.aerialvision` figure reports from
  a trace instead of from the runtime, making the trace the single
  source of truth for reporting.
* ``repro-trace`` (:mod:`repro.trace.cli`) — summarize / validate /
  convert a trace file from the command line.

Quickstart::

    from repro.cuda import CudaRuntime
    from repro.trace import Tracer, write_chrome_trace

    tracer = Tracer()
    rt = CudaRuntime(tracer=tracer)
    ...  # run any workload
    write_chrome_trace("out_trace.json", tracer)
"""

from repro.trace.clock import SimClock
from repro.trace.tracer import (
    NULL_TRACER, NullTracer, Span, TraceEvent, Tracer,
    TID_API, TID_RUNTIME, stream_tid)
from repro.trace.export import (
    chrome_trace_events, load_chrome_trace, render_text_timeline,
    validate_chrome_events, write_chrome_trace)
from repro.trace.bridge import (
    emit_sample_counters, kernel_records_from_events, profiles_from_trace,
    figure_reports_from_tracer)

__all__ = [
    "SimClock", "Tracer", "NullTracer", "NULL_TRACER", "Span",
    "TraceEvent", "TID_API", "TID_RUNTIME", "stream_tid",
    "chrome_trace_events", "write_chrome_trace", "load_chrome_trace",
    "render_text_timeline", "validate_chrome_events",
    "emit_sample_counters", "kernel_records_from_events",
    "profiles_from_trace", "figure_reports_from_tracer",
]
