"""The single monotonic simulated-time source.

Before this module existed, the runtime kernel timeline
(``CudaRuntime.now``), the timing model's main loop (a local ``now``
float) and the interval sampler (:class:`repro.timing.stats.SampleBlock`
binning stamps it was handed) each carried time independently; the
idle-jump spreading in ``GpuTiming._charge_idle`` and profiler
aggregation could in principle drift apart.  :class:`SimClock` is the
one injected source both sides share: span stamps and interval bins are
derived from the same monotonically-advancing value, so they can never
disagree.
"""

from __future__ import annotations


class SimClock:
    """A monotonic simulated-time counter (cycles or virtual cost units).

    The clock only moves forward: :meth:`advance_to` rejects a target
    earlier than ``now``, which turns any double-charging or
    out-of-order stamping bug into a loud error instead of a silently
    skewed timeline.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def advance(self, dt: float) -> float:
        """Move forward by ``dt`` (must be >= 0); returns the new time."""
        if dt < 0:
            raise ValueError(f"SimClock cannot move backwards (dt={dt})")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Move forward to absolute time ``t`` (must be >= now)."""
        if t < self._now:
            raise ValueError(
                f"SimClock cannot move backwards ({self._now} -> {t})")
        self._now = float(t)
        return self._now

    @property
    def cycles(self) -> int:
        """``now`` truncated to whole cycles."""
        return int(self._now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now})"
