"""Correlation experiments (paper Section IV, Figures 6 and 7).

Runs the MNIST workload twice — once on the virtual-hardware oracle
("NVProf on the GTX 1050") and once on the cycle-level timing model —
then compares total and per-kernel execution time.  The paper reports
the simulator within ~30% overall with 72% correlation, with LRN, CGEMM,
GEMV2T, Winograd and the fft2d kernels as the per-kernel outliers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cuda.runtime import CudaRuntime
from repro.harness.hwmodel import HardwareOracleBackend
from repro.timing.backend import TimingBackend
from repro.timing.config import GPUConfig, GTX1050
from repro.workloads.mnist_sample import MnistSample, MnistSampleConfig

#: The kernels Figure 7 singles out (families, matched by substring).
FIGURE7_KERNELS = ["lrn", "cgemm", "gemv2T", "winograd",
                   "fft2d_r2c_32x32", "fft2d_r2c_16x16",
                   "fft2d_c2r_32x32"]


@dataclass
class KernelCorrelation:
    name: str
    hw_cycles: float
    sim_cycles: float
    launches: int

    @property
    def ratio(self) -> float:
        return self.sim_cycles / self.hw_cycles if self.hw_cycles else 0.0


@dataclass
class CorrelationResult:
    hw_total: float
    sim_total: float
    per_kernel: list[KernelCorrelation] = field(default_factory=list)

    @property
    def total_ratio(self) -> float:
        """Simulated / hardware execution time (Fig. 6's two bars)."""
        return self.sim_total / self.hw_total if self.hw_total else 0.0

    @property
    def total_error(self) -> float:
        """|sim - hw| / hw — the paper reports "within 30%"."""
        return abs(self.total_ratio - 1.0)

    @property
    def correlation(self) -> float:
        """Pearson correlation of per-kernel cycle counts (paper: 72%)."""
        if len(self.per_kernel) < 2:
            return 1.0
        hw = np.array([k.hw_cycles for k in self.per_kernel])
        sim = np.array([k.sim_cycles for k in self.per_kernel])
        if hw.std() == 0 or sim.std() == 0:
            return 1.0
        return float(np.corrcoef(hw, sim)[0, 1])

    def outliers(self, threshold: float = 0.25) -> list[KernelCorrelation]:
        """Kernels whose sim/hw ratio deviates more than *threshold*."""
        return [k for k in self.per_kernel
                if abs(k.ratio - 1.0) > threshold]

    def family(self, substring: str) -> KernelCorrelation | None:
        matches = [k for k in self.per_kernel if substring in k.name]
        if not matches:
            return None
        return KernelCorrelation(
            name=substring,
            hw_cycles=sum(k.hw_cycles for k in matches),
            sim_cycles=sum(k.sim_cycles for k in matches),
            launches=sum(k.launches for k in matches))

    def figure7_rows(self) -> list[tuple[str, float, float]]:
        """(kernel family, hw=100, sim relative) rows like Figure 7."""
        rows = []
        for name in FIGURE7_KERNELS:
            entry = self.family(name)
            if entry is not None and entry.hw_cycles > 0:
                rows.append((name, 100.0, 100.0 * entry.ratio))
        return rows

    def render(self) -> str:
        lines = [
            "Fig 6 — MNIST execution-time correlation",
            f"  hardware (oracle): {self.hw_total:12.0f} cycles (=100%)",
            f"  simulation:        {self.sim_total:12.0f} cycles "
            f"({100 * self.total_ratio:.1f}%)",
            f"  per-kernel correlation: {100 * self.correlation:.0f}%",
            "",
            "Fig 7 — per-kernel relative execution time (hw = 100)",
        ]
        for name, hw, sim in self.figure7_rows():
            lines.append(f"  {name:18s} hw={hw:6.1f}  sim={sim:6.1f}")
        return "\n".join(lines)


def _collect(runtime: CudaRuntime) -> dict[str, tuple[float, int]]:
    summary = runtime.profile_summary()
    return {name: (entry["cycles"], entry["launches"])
            for name, entry in summary.items()}


def run_mnist_correlation(
        config: GPUConfig = GTX1050, *,
        sample_config: MnistSampleConfig | None = None,
        max_cycles: int = 50_000_000) -> CorrelationResult:
    """Run MNIST on the oracle and the timing model, then compare."""
    # Hardware (oracle) pass.
    hw_rt = CudaRuntime(backend=HardwareOracleBackend(config))
    hw_sample = MnistSample(hw_rt, sample_config)
    hw_result = hw_sample.run(self_check=True)
    if not hw_result.self_check_passed:
        raise AssertionError("MNIST self-check failed on the oracle run")
    hw_cycles = _collect(hw_rt)

    # Simulator pass (performance mode).
    sim_rt = CudaRuntime(backend=TimingBackend(config,
                                               max_cycles=max_cycles))
    sim_sample = MnistSample(sim_rt, sample_config)
    sim_result = sim_sample.run(self_check=False)
    if not np.allclose(sim_result.logits, hw_result.logits, atol=1e-3):
        raise AssertionError(
            "functional divergence between oracle and timing runs")
    sim_cycles = _collect(sim_rt)

    per_kernel = []
    for name in sorted(set(hw_cycles) | set(sim_cycles)):
        hw_c, launches = hw_cycles.get(name, (0.0, 0))
        sim_c, _ = sim_cycles.get(name, (0.0, 0))
        per_kernel.append(KernelCorrelation(
            name=name, hw_cycles=hw_c, sim_cycles=sim_c,
            launches=launches))
    return CorrelationResult(
        hw_total=sum(k.hw_cycles for k in per_kernel),
        sim_total=sum(k.sim_cycles for k in per_kernel),
        per_kernel=per_kernel)
