"""Virtual-hardware oracle: the NVProf-on-a-GTX1050 stand-in.

The paper correlates GPGPU-Sim cycle counts against NVProf measurements
on a real GeForce GTX 1050.  With no GPU available, the reference side is
this *analytical* latency model: it executes the kernel functionally
(collecting exact per-class instruction and memory-transaction counts)
and converts them to a hardware cycle estimate with a roofline-style
formula — a genuinely different set of modelling assumptions than the
cycle-level simulator it is compared against.

Per-kernel-family *SASS tuning factors* model what a PTX-level simulator
cannot see: cuDNN ships hand-scheduled SASS for its GEMM/GEMV/Winograd/
LRN kernels that beats the PTX issue model (making the simulator look
pessimistic there), while its FFT kernels suffer shared-memory bank
conflicts on real silicon that the simulator's idealised shared memory
hides (making it look optimistic).  These are exactly the per-kernel
outliers of the paper's Figure 7; DESIGN.md records the substitution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cuda.runtime import KernelRunResult
from repro.functional.executor import FunctionalEngine
from repro.functional.state import LaunchContext
from repro.ptx.instructions import MEM, OP_CLASS, SFU
from repro.timing.config import GPUConfig, GTX1050

#: family substring -> hardware-vs-PTX-model speed factor (<1: the real
#: kernel is faster than the instruction stream suggests; >1: slower).
SASS_TUNING_FACTORS = {
    # Hand-scheduled SASS beats the PTX issue model (sim looks slow):
    "sgemm": 0.55,
    "cgemm": 1.50,
    "gemv2T": 1.60,
    "winograd": 0.90,
    "lrn": 0.30,
    # Real fft2d kernels pay shared-memory bank conflicts and SFU
    # (sin/cos twiddle) serialisation the idealised model hides
    # (sim looks fast):
    "fft2d": 3.40,
    "fft_transpose": 1.10,
}


def sass_factor(kernel_name: str) -> float:
    for family, factor in SASS_TUNING_FACTORS.items():
        if family in kernel_name:
            return factor
    return 1.0


@dataclass
class HardwareEstimate:
    """One kernel's oracle output."""

    kernel: str
    cycles: float
    compute_cycles: float
    memory_cycles: float
    latency_cycles: float
    warp_instructions: int
    dram_bytes: int
    bound: str = "compute"


@dataclass
class HardwareOracle:
    """Analytical GPU: issue roofline x DRAM roofline x latency floor."""

    config: GPUConfig = GTX1050
    launch_overhead: float = 600.0      # driver + launch latency, cycles
    dram_bytes_per_cycle: float = 48.0  # aggregate bandwidth
    sfu_throughput_ratio: int = 4       # SFU ops cost 4 issue slots
    mem_issue_cost: int = 2             # ld/st dual-issue cost
    estimates: list[HardwareEstimate] = field(default_factory=list)

    def estimate(self, launch: LaunchContext) -> HardwareEstimate:
        engine = FunctionalEngine(launch)
        counts: dict[str, int] = {}
        transactions = {"read_bytes": 0, "write_bytes": 0}

        def observe(record) -> None:
            op_class = OP_CLASS.get(record.inst.opcode, "alu")
            counts[op_class] = counts.get(op_class, 0) + 1
            for space, _addr, nbytes, is_write in record.mem_accesses:
                if space != "global":
                    continue
                key = "write_bytes" if is_write else "read_bytes"
                transactions[key] += nbytes

        engine.on_exec = observe
        stats = engine.run()

        issue_slots = (counts.get("alu", 0)
                       + counts.get("ctrl", 0)
                       + counts.get("bar", 0)
                       + counts.get(SFU, 0) * self.sfu_throughput_ratio
                       + counts.get(MEM, 0) * self.mem_issue_cost)
        total_issue = self.config.num_sms * self.config.schedulers_per_sm
        # Occupancy: a grid smaller than the machine cannot use every SM.
        blocks = launch.num_ctas
        usable_sms = min(self.config.num_sms,
                         max(1, blocks // self.config.max_ctas_per_sm + 1))
        usable_issue = usable_sms * self.config.schedulers_per_sm
        compute = issue_slots / min(total_issue, usable_issue)
        dram_bytes = (transactions["read_bytes"]
                      + transactions["write_bytes"])
        memory = dram_bytes / self.dram_bytes_per_cycle
        # Latency floor: a dependent chain cannot finish faster than its
        # longest warp's instruction count times the mean issue gap.
        longest_warp = (stats.instructions
                        / max(stats.warps_launched, 1))
        latency = longest_warp * 1.5
        raw = max(compute, memory, latency) + self.launch_overhead
        cycles = raw * sass_factor(launch.kernel.name)
        bound = ("memory" if memory >= compute and memory >= latency
                 else "compute" if compute >= latency else "latency")
        estimate = HardwareEstimate(
            kernel=launch.kernel.name, cycles=cycles,
            compute_cycles=compute, memory_cycles=memory,
            latency_cycles=latency,
            warp_instructions=stats.instructions,
            dram_bytes=dram_bytes, bound=bound)
        self.estimates.append(estimate)
        return estimate


class HardwareOracleBackend:
    """Runtime backend reporting the oracle's cycles (the "NVProf" run)."""

    name = "hardware-oracle"

    def __init__(self, config: GPUConfig = GTX1050, **kwargs) -> None:
        self.oracle = HardwareOracle(config=config, **kwargs)

    def execute(self, launch: LaunchContext) -> KernelRunResult:
        estimate = self.oracle.estimate(launch)
        return KernelRunResult(
            instructions=estimate.warp_instructions,
            cycles=int(estimate.cycles),
            stats={"bound": estimate.bound,
                   "dram_bytes": estimate.dram_bytes})
