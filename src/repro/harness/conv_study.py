"""Section V case-study drivers: conv_sample x algorithm x direction.

Each driver runs one (direction, algorithm) pair of the paper's sweep on
the timing model and returns a merged :class:`FigureReport` — the data
behind Figures 9-25 — plus the per-kernel profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aerialvision.report import FigureReport, kernel_figures, merge_reports
from repro.cuda.runtime import CudaRuntime, KernelProfile
from repro.cudnn import ConvBwdDataAlgo, ConvBwdFilterAlgo, ConvFwdAlgo
from repro.timing.backend import TimingBackend
from repro.timing.config import GPUConfig, TINY
from repro.workloads.conv_sample import ConvSample, ConvSampleConfig

Direction = str  # "fwd" | "bwd_data" | "bwd_filter"


@dataclass
class StudyResult:
    direction: Direction
    algo: str
    profiles: list[KernelProfile]
    report: FigureReport
    kernel_reports: dict[str, FigureReport] = field(default_factory=dict)

    @property
    def total_cycles(self) -> int:
        return sum(p.result.cycles for p in self.profiles)

    @property
    def total_instructions(self) -> int:
        return sum(p.result.stats.get("instructions", 0)
                   for p in self.profiles)

    @property
    def mean_ipc(self) -> float:
        cycles = self.total_cycles
        return self.total_instructions / cycles if cycles else 0.0


def run_case(direction: Direction, algo, *,
             gpu: GPUConfig = TINY,
             sample: ConvSampleConfig | None = None,
             reconverge_at_exit: bool = False) -> StudyResult:
    """Run one conv_sample case on the performance model."""
    runtime = CudaRuntime(backend=TimingBackend(
        gpu, reconverge_at_exit=reconverge_at_exit))
    workload = ConvSample(runtime, sample)
    if direction == "fwd":
        profiles = workload.run_forward(algo)
    elif direction == "bwd_data":
        profiles = workload.run_backward_data(algo)
    elif direction == "bwd_filter":
        profiles = workload.run_backward_filter(algo)
    else:
        raise ValueError(f"unknown direction {direction!r}")
    reports = []
    kernel_reports: dict[str, FigureReport] = {}
    for index, profile in enumerate(profiles):
        if profile.result.samples is None:
            continue
        report = kernel_figures(f"{profile.name}#{index}",
                                profile.result.samples)
        reports.append(report)
        kernel_reports.setdefault(profile.name, report)
    merged = merge_reports(f"{direction}-{algo.value}", reports)
    return StudyResult(direction=direction, algo=algo.value,
                       profiles=profiles, report=merged,
                       kernel_reports=kernel_reports)


def sweep(directions: dict[Direction, list] | None = None, *,
          gpu: GPUConfig = TINY,
          sample: ConvSampleConfig | None = None
          ) -> dict[tuple[Direction, str], StudyResult]:
    """The paper's full Section V sweep (all three directions)."""
    from repro.cudnn.algos import (
        PAPER_BWD_DATA_ALGOS, PAPER_BWD_FILTER_ALGOS, PAPER_FWD_ALGOS)
    if directions is None:
        directions = {
            "fwd": PAPER_FWD_ALGOS,
            "bwd_data": PAPER_BWD_DATA_ALGOS,
            "bwd_filter": PAPER_BWD_FILTER_ALGOS,
        }
    results: dict[tuple[Direction, str], StudyResult] = {}
    for direction, algos in directions.items():
        for algo in algos:
            result = run_case(direction, algo, gpu=gpu, sample=sample)
            results[(direction, algo.value)] = result
    return results


__all__ = ["ConvBwdDataAlgo", "ConvBwdFilterAlgo", "ConvFwdAlgo",
           "StudyResult", "run_case", "sweep"]
