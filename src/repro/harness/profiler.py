"""NVProf-style profiling output.

The paper positions NVProf as the closest related tool ("NVProf and
GPGPU-Sim give many similar statistics, including instructions per cycle
and the number of instructions executed...").  :class:`NVProfLike`
renders a ``nvprof``-format GPU-activities table from any runtime's
per-launch profiles (oracle or timing backend), so extracted kernels can
be "studied using higher-level tools like NVProf" (Section VI).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cuda.runtime import CudaRuntime


@dataclass
class ProfilerRow:
    name: str
    time_pct: float
    total_cycles: float
    calls: int
    avg: float
    min: float
    max: float
    instructions: int

    @property
    def ipc(self) -> float:
        return (self.instructions / self.total_cycles
                if self.total_cycles else 0.0)


class NVProfLike:
    """Aggregates kernel profiles into an nvprof table.

    Accepts either a live :class:`CudaRuntime` (reads ``.profiles``) or
    any iterable of profile-shaped records (``name`` plus a ``result``
    with ``cycles``/``instructions``) — e.g. the records that
    :func:`repro.trace.bridge.profiles_from_trace` reconstructs from a
    Chrome-trace file, making a saved trace renderable offline.
    """

    def __init__(self, source: CudaRuntime | list) -> None:
        if hasattr(source, "profiles"):
            self.runtime: CudaRuntime | None = source
            self._records = None
        else:
            self.runtime = None
            self._records = list(source)

    @classmethod
    def from_trace(cls, source) -> "NVProfLike":
        """Build the profiler from a Tracer, event list or trace path."""
        from repro.trace.bridge import profiles_from_trace
        return cls(profiles_from_trace(source))

    @property
    def profiles(self) -> list:
        return (self.runtime.profiles if self.runtime is not None
                else self._records)

    def rows(self) -> list[ProfilerRow]:
        grouped: dict[str, list] = {}
        for profile in self.profiles:
            grouped.setdefault(profile.name, []).append(profile)
        total = sum(p.result.cycles or p.result.instructions
                    for p in self.profiles) or 1
        rows = []
        for name, profiles in grouped.items():
            costs = [p.result.cycles or p.result.instructions
                     for p in profiles]
            instructions = sum(p.result.instructions for p in profiles)
            rows.append(ProfilerRow(
                name=name,
                time_pct=100.0 * sum(costs) / total,
                total_cycles=float(sum(costs)),
                calls=len(profiles),
                avg=sum(costs) / len(costs),
                min=float(min(costs)),
                max=float(max(costs)),
                instructions=instructions))
        rows.sort(key=lambda row: -row.total_cycles)
        return rows

    def render(self, *, top: int | None = None) -> str:
        rows = self.rows()
        if top is not None:
            rows = rows[:top]
        lines = [
            "==PROF== Profiling result (simulated cycles):",
            f"{'Time(%)':>8} {'Time':>12} {'Calls':>6} {'Avg':>10} "
            f"{'Min':>10} {'Max':>10}  Name",
        ]
        for row in rows:
            lines.append(
                f"{row.time_pct:7.2f}% {row.total_cycles:12.0f} "
                f"{row.calls:6d} {row.avg:10.1f} {row.min:10.0f} "
                f"{row.max:10.0f}  {row.name}")
        return "\n".join(lines)
