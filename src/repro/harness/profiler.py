"""NVProf-style profiling output.

The paper positions NVProf as the closest related tool ("NVProf and
GPGPU-Sim give many similar statistics, including instructions per cycle
and the number of instructions executed...").  :class:`NVProfLike`
renders a ``nvprof``-format GPU-activities table from any runtime's
per-launch profiles (oracle or timing backend), so extracted kernels can
be "studied using higher-level tools like NVProf" (Section VI).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cuda.runtime import CudaRuntime


@dataclass
class ProfilerRow:
    name: str
    time_pct: float
    total_cycles: float
    calls: int
    avg: float
    min: float
    max: float
    instructions: int

    @property
    def ipc(self) -> float:
        return (self.instructions / self.total_cycles
                if self.total_cycles else 0.0)


class NVProfLike:
    """Aggregates a runtime's kernel profiles into an nvprof table."""

    def __init__(self, runtime: CudaRuntime) -> None:
        self.runtime = runtime

    def rows(self) -> list[ProfilerRow]:
        grouped: dict[str, list] = {}
        for profile in self.runtime.profiles:
            grouped.setdefault(profile.name, []).append(profile)
        total = sum(p.result.cycles or p.result.instructions
                    for p in self.runtime.profiles) or 1
        rows = []
        for name, profiles in grouped.items():
            costs = [p.result.cycles or p.result.instructions
                     for p in profiles]
            instructions = sum(p.result.instructions for p in profiles)
            rows.append(ProfilerRow(
                name=name,
                time_pct=100.0 * sum(costs) / total,
                total_cycles=float(sum(costs)),
                calls=len(profiles),
                avg=sum(costs) / len(costs),
                min=float(min(costs)),
                max=float(max(costs)),
                instructions=instructions))
        rows.sort(key=lambda row: -row.total_cycles)
        return rows

    def render(self, *, top: int | None = None) -> str:
        rows = self.rows()
        if top is not None:
            rows = rows[:top]
        lines = [
            "==PROF== Profiling result (simulated cycles):",
            f"{'Time(%)':>8} {'Time':>12} {'Calls':>6} {'Avg':>10} "
            f"{'Min':>10} {'Max':>10}  Name",
        ]
        for row in rows:
            lines.append(
                f"{row.time_pct:7.2f}% {row.total_cycles:12.0f} "
                f"{row.calls:6d} {row.avg:10.1f} {row.min:10.0f} "
                f"{row.max:10.0f}  {row.name}")
        return "\n".join(lines)
