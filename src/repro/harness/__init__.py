"""Experiment harnesses: oracle, correlation, case-study drivers."""

from repro.harness.conv_study import StudyResult, run_case, sweep
from repro.harness.faultcampaign import (
    CampaignConfig, FaultResult, run_campaign)
from repro.harness.correlation import (
    CorrelationResult, FIGURE7_KERNELS, KernelCorrelation,
    run_mnist_correlation)
from repro.harness.profiler import NVProfLike, ProfilerRow
from repro.harness.hwmodel import (
    HardwareEstimate, HardwareOracle, HardwareOracleBackend,
    SASS_TUNING_FACTORS)

__all__ = [
    "CampaignConfig", "CorrelationResult", "FIGURE7_KERNELS",
    "FaultResult", "HardwareEstimate",
    "HardwareOracle", "HardwareOracleBackend", "KernelCorrelation",
    "SASS_TUNING_FACTORS", "StudyResult", "run_campaign", "run_case",
    "NVProfLike", "ProfilerRow", "run_mnist_correlation", "sweep",
]
