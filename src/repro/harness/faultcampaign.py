"""Fault-injection campaign: measure the debugger's localisation power.

The paper's Section III-D claims its three-level bisection finds "the
first instruction that executed incorrectly".  This harness turns that
claim into a number: seed N known bugs (:mod:`repro.faultinject`) into
the functional simulator, hand each faulty simulator to
:class:`~repro.debugtool.bisect.DifferentialDebugger` with the clean
simulator as reference, and score how deep each bisection got:

* ``exact_instruction`` — level 3 landed on the injected pc;
* ``level3_instruction_mismatch`` — level 3, but a different pc (the
  corruption was first *observed* elsewhere);
* ``level2_kernel_only`` / ``level1_api_only`` — bisection stopped
  short;
* ``masked`` — the injected corruption never reached any output buffer
  (screened out before bisection; not a debugger failure);
* ``false_clean`` — the fault changed output yet the debugger reported
  clean (a debugger bug — the campaign exists to prove there are none).

Liveness faults (lost memory response, lost stream-event signal) are
scored separately: the simulator must terminate in a *typed* error —
``TimingDeadlockError`` / ``CudaError`` — never hang.

Run it::

    python -m repro.harness.faultcampaign --faults 25 --seed 2019 \\
        --out results/fault_campaign.json
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import asdict, dataclass

import numpy as np

from repro.cuda.runtime import CudaError, CudaRuntime
from repro.cudnn import (
    ConvFwdAlgo, Cudnn, build_application_binary)
from repro.debugtool.bisect import DifferentialDebugger
from repro.debugtool.instrument import instrumented_sites
from repro.errors import ReproError, TimingDeadlockError
from repro.faultinject import (
    FUNCTIONAL_SITES, FaultSpec, faulty_runtime_factory)
from repro.nn.lenet import LeNet, LeNetConfig
from repro.quirks import FIXED
from repro.timing.backend import TimingBackend
from repro.timing.config import TINY
from repro.workloads.conv_sample import ConvSampleConfig


# ---------------------------------------------------------------------------
# Workloads under test
# ---------------------------------------------------------------------------
def _lenet_workload():
    """Reduced LeNet forward pass over one image (Winograd conv1 +
    implicit-GEMM conv2, the paper's MNIST network at CI scale)."""
    config = LeNetConfig.reduced()
    rng = np.random.default_rng(2019)
    images = rng.standard_normal(
        (1, config.in_channels, config.input_hw, config.input_hw)
        ).astype(np.float32)

    def workload(dnn: Cudnn) -> None:
        model = LeNet(dnn, config)
        model.forward(images)
    return workload


def _conv_sample_workload():
    """conv_sample-style forward convolutions over two algorithms."""
    config = ConvSampleConfig()
    x_desc, w_desc, conv = config.descriptors()
    rng = np.random.default_rng(config.seed)
    x = rng.standard_normal(x_desc.dims).astype(np.float32)
    w = (rng.standard_normal((config.filters, config.channels,
                              config.ksize, config.ksize))
         .astype(np.float32) * 0.25)

    def workload(dnn: Cudnn) -> None:
        rt = dnn.rt
        x_ptr = rt.upload_f32(x.ravel())
        w_ptr = rt.upload_f32(w.ravel())
        for algo in (ConvFwdAlgo.IMPLICIT_GEMM, ConvFwdAlgo.WINOGRAD):
            dnn.convolution_forward(x_desc, x_ptr, w_desc, w_ptr, conv,
                                    algo)
    return workload


WORKLOADS = {
    "lenet": _lenet_workload,
    "conv_sample": _conv_sample_workload,
}


# ---------------------------------------------------------------------------
# Campaign configuration and scoring
# ---------------------------------------------------------------------------
@dataclass
class CampaignConfig:
    faults: int = 25
    seed: int = 2019
    workloads: tuple[str, ...] = ("lenet", "conv_sample")
    entries_per_thread: int = 4096
    #: also probe the two liveness sites (timing/stream faults).
    include_liveness: bool = True


@dataclass
class FaultResult:
    spec: dict
    workload: str
    verdict: str
    injected_text: str = ""
    report: dict | None = None
    error: str | None = None

    def to_dict(self) -> dict:
        data = asdict(self)
        return {key: value for key, value in data.items()
                if value not in (None, "")}


def _digest_allocations(runtime: CudaRuntime) -> str:
    hasher = hashlib.sha256()
    for base in sorted(runtime.global_mem.allocations):
        size = runtime.global_mem.allocations[base]
        hasher.update(base.to_bytes(8, "little"))
        hasher.update(runtime.global_mem.read(base, size))
    return hasher.hexdigest()


def _run_workload(factory, workload, binary) -> tuple[str, list[str]]:
    """(allocation digest, launched kernel names); faults may raise."""
    runtime = factory()
    runtime.load_binary(binary)
    launched: list[str] = []
    runtime.before_kernel_hooks.append(
        lambda ordinal, name, grid, block, args: launched.append(name))
    dnn = Cudnn(runtime)
    workload(dnn)
    runtime.synchronize()
    return _digest_allocations(runtime), launched


def _candidate_sites(binary, launched: list[str]
                     ) -> list[tuple[str, int]]:
    """All (kernel name, original pc) injection candidates."""
    runtime = CudaRuntime()
    runtime.load_binary(binary)
    candidates: list[tuple[str, int]] = []
    for name in sorted(set(launched)):
        kernel = runtime.program.find_kernel(name)
        candidates.extend((name, pc) for pc in instrumented_sites(kernel))
    return candidates


def _score(spec: FaultSpec, report) -> str:
    if report.clean:
        return "false_clean"
    if report.level < 2:
        return "level1_api_only"
    if report.level < 3:
        return "level2_kernel_only"
    if report.instruction.pc == spec.pc:
        return "exact_instruction"
    return "level3_instruction_mismatch"


# ---------------------------------------------------------------------------
# Liveness probes
# ---------------------------------------------------------------------------
def _probe_mem_drop(spec: FaultSpec, binary) -> FaultResult:
    """A lost read response must surface as TimingDeadlockError."""
    factory = faulty_runtime_factory(
        spec, backend_factory=lambda: TimingBackend(
            TINY, max_cycles=1_000_000))
    runtime = factory()
    runtime.load_binary(binary)
    dnn = Cudnn(runtime)
    config = ConvSampleConfig()
    x_desc, w_desc, conv = config.descriptors()
    rng = np.random.default_rng(config.seed)
    x_ptr = runtime.upload_f32(
        rng.standard_normal(x_desc.dims).astype(np.float32).ravel())
    w_ptr = runtime.upload_f32(
        rng.standard_normal((config.filters, config.channels,
                             config.ksize, config.ksize))
        .astype(np.float32).ravel())
    try:
        dnn.convolution_forward(x_desc, x_ptr, w_desc, w_ptr, conv,
                                ConvFwdAlgo.IMPLICIT_GEMM)
        runtime.synchronize()
    except TimingDeadlockError as error:
        return FaultResult(spec=spec.to_dict(), workload="conv_sample",
                           verdict="typed_error", error=str(error))
    except ReproError as error:
        return FaultResult(spec=spec.to_dict(), workload="conv_sample",
                           verdict="wrong_error_type", error=str(error))
    return FaultResult(spec=spec.to_dict(), workload="conv_sample",
                       verdict="undetected")


def _probe_stream_lost(spec: FaultSpec, binary) -> FaultResult:
    """A lost record signal must surface as a CudaError deadlock."""
    runtime = faulty_runtime_factory(spec)()
    runtime.load_binary(binary)
    producer = runtime.stream_create()
    consumer = runtime.stream_create()
    data = np.ones(16, dtype=np.float32)
    ptr = runtime.upload_f32(data)
    # Enough record/wait pairs that losing the Nth record (any N the
    # spec's dyn_index selects, up to 3) wedges the consumer stream.
    for round_index in range(4):
        event = runtime.event_create()
        runtime.memcpy_h2d_async(ptr, data * (2 + round_index), producer)
        runtime.event_record(event, producer)
        runtime.stream_wait_event(consumer, event)
        runtime.memcpy_h2d_async(ptr, data * 7, consumer)
    try:
        runtime.synchronize()
    except CudaError as error:
        return FaultResult(spec=spec.to_dict(), workload="streams",
                           verdict="typed_error", error=str(error))
    return FaultResult(spec=spec.to_dict(), workload="streams",
                       verdict="undetected")


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------
def run_campaign(config: CampaignConfig | None = None,
                 progress=None) -> dict:
    config = config or CampaignConfig()
    say = progress or (lambda message: None)
    binary = build_application_binary()
    rng = random.Random(config.seed)

    clean: dict[str, dict] = {}
    pools: dict[str, list[tuple[str, int]]] = {}
    for name in config.workloads:
        workload = WORKLOADS[name]()
        digest, launched = _run_workload(CudaRuntime, workload, binary)
        clean[name] = {"digest": digest, "kernel_launches": len(launched)}
        pools[name] = _candidate_sites(binary, launched)
        say(f"{name}: {len(launched)} launches, "
            f"{len(pools[name])} candidate sites")

    results: list[FaultResult] = []
    text_runtime = CudaRuntime()
    text_runtime.load_binary(binary)
    for index in range(config.faults):
        site = FUNCTIONAL_SITES[index % len(FUNCTIONAL_SITES)]
        workload_name = config.workloads[
            rng.randrange(len(config.workloads))]
        kernel, pc = pools[workload_name][
            rng.randrange(len(pools[workload_name]))]
        spec = FaultSpec(
            fault_id=f"{site.split('_')[0][:4]}-{index:02d}",
            site=site, kernel=kernel, pc=pc,
            bit=rng.randrange(32), lane=rng.randrange(8),
            seed=rng.randrange(1 << 30))
        injected = text_runtime.program.find_kernel(kernel).body[pc]
        factory = faulty_runtime_factory(spec)
        workload = WORKLOADS[workload_name]()
        try:
            digest, _ = _run_workload(factory, workload, binary)
            effective = digest != clean[workload_name]["digest"]
        except ReproError:
            effective = True  # crashing the suspect *is* a divergence
        if not effective:
            results.append(FaultResult(
                spec=spec.to_dict(), workload=workload_name,
                verdict="masked", injected_text=injected.text.strip()))
            say(f"{spec.fault_id}: masked")
            continue
        debugger = DifferentialDebugger(
            workload, suspect_factory=factory,
            reference_quirks=FIXED, binary=binary,
            entries_per_thread=config.entries_per_thread)
        report = debugger.run()
        verdict = _score(spec, report)
        results.append(FaultResult(
            spec=spec.to_dict(), workload=workload_name,
            verdict=verdict, injected_text=injected.text.strip(),
            report=report.to_dict()))
        say(f"{spec.fault_id}: {verdict} "
            f"({kernel} pc={pc} {injected.text.strip()!r})")

    if config.include_liveness:
        for index in range(2):
            results.append(_probe_mem_drop(FaultSpec(
                fault_id=f"memd-{index:02d}", site="mem_drop_response",
                dyn_index=rng.randrange(16)), binary))
            say(f"{results[-1].spec['fault_id']}: "
                f"{results[-1].verdict}")
            results.append(_probe_stream_lost(FaultSpec(
                fault_id=f"strm-{index:02d}", site="stream_event_lost",
                dyn_index=index), binary))
            say(f"{results[-1].spec['fault_id']}: "
                f"{results[-1].verdict}")

    functional = [r for r in results
                  if r.spec["site"] in FUNCTIONAL_SITES]
    liveness = [r for r in results
                if r.spec["site"] not in FUNCTIONAL_SITES]
    effective = [r for r in functional if r.verdict != "masked"]
    exact = sum(1 for r in effective
                if r.verdict == "exact_instruction")
    scoreboard = {
        "config": {
            "faults": config.faults,
            "seed": config.seed,
            "workloads": list(config.workloads),
            "entries_per_thread": config.entries_per_thread,
        },
        "clean": clean,
        "summary": {
            "functional_total": len(functional),
            "masked": len(functional) - len(effective),
            "effective": len(effective),
            "exact_instruction": exact,
            "level3_instruction_mismatch": sum(
                1 for r in effective
                if r.verdict == "level3_instruction_mismatch"),
            "level2_kernel_only": sum(
                1 for r in effective
                if r.verdict == "level2_kernel_only"),
            "level1_api_only": sum(
                1 for r in effective
                if r.verdict == "level1_api_only"),
            "false_clean": sum(
                1 for r in effective if r.verdict == "false_clean"),
            "exact_rate": round(exact / len(effective), 4)
            if effective else None,
            "liveness_total": len(liveness),
            "liveness_typed_errors": sum(
                1 for r in liveness if r.verdict == "typed_error"),
        },
        "faults": [r.to_dict() for r in results],
    }
    return scoreboard


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Seed simulator bugs and score the three-level "
                    "differential debugger against them.")
    parser.add_argument("--faults", type=int, default=25)
    parser.add_argument("--seed", type=int, default=2019)
    parser.add_argument("--workloads", nargs="+",
                        default=["lenet", "conv_sample"],
                        choices=sorted(WORKLOADS))
    parser.add_argument("--no-liveness", action="store_true",
                        help="skip the timing/stream liveness probes")
    parser.add_argument("--out", default=None,
                        help="write the JSON scoreboard here")
    args = parser.parse_args(argv)

    config = CampaignConfig(
        faults=args.faults, seed=args.seed,
        workloads=tuple(args.workloads),
        include_liveness=not args.no_liveness)
    scoreboard = run_campaign(config, progress=print)
    text = json.dumps(scoreboard, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}")
    summary = scoreboard["summary"]
    print("---")
    for key in sorted(summary):
        print(f"{key}: {summary[key]}")
    failed = (summary["false_clean"] > 0
              or summary["liveness_typed_errors"]
              < summary["liveness_total"])
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
