"""Re-injectable historical GPGPU-Sim behaviours ("legacy quirks").

The paper's Section III is a catalogue of bugs and missing features the
authors found while bringing up cuDNN on GPGPU-Sim.  Each is modelled
here as a switch that restores the *pre-fix* behaviour, so the debugging
methodology of Section III-D can be demonstrated end-to-end: enable a
quirk, watch the workload mis-execute, and let the bisection tool locate
the first faulty kernel and instruction.

All switches default to the *fixed* behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class LegacyQuirks:
    """Switches restoring historical GPGPU-Sim bugs/limitations."""

    #: ``rem`` always computes ``src1.u64 % src2.u64`` regardless of the
    #: type specifier — the bug found in ``fft2d_r2c_32x32`` via
    #: ``rem.u32 %r149, %r2, %r121`` (Section III-D).  The flag also
    #: restores the mechanism that made the bug *observable*: GPGPU-Sim
    #: instruction implementations build a fresh stack-allocated
    #: ``ptx_reg_t`` union and only set its low member, so every
    #: sub-64-bit register write carries uninitialised upper bytes into
    #: the register file.  Correct (typed) readers never notice; the
    #: u64-blind ``rem`` reads the garbage and corrupts results.
    rem_ignores_type: bool = False

    #: ``bfe`` ignores signedness — "subtle errors for signed inputs"
    #: found by differential coverage analysis (Section III-D).
    bfe_unsigned_only: bool = False

    #: ``brev`` (bit reverse, used by FFT convolution kernels) is not
    #: implemented (Section III-B).
    brev_unsupported: bool = False

    #: ``cudaStreamWaitEvent`` is not implemented (Section III-B).
    stream_wait_event_unsupported: bool = False

    #: The driver-API launch entry point ``cuLaunchKernel`` is missing
    #: (Section III-B).
    cu_launch_kernel_unsupported: bool = False

    #: Texture names map to a *single* texref; registering a second
    #: texref under the same name loses data (Section III-C).
    single_texref_per_name: bool = False

    #: Re-binding a bound texref raises instead of implicitly unbinding
    #: the previous cudaArray (Section III-C).
    rebind_texture_errors: bool = False

    #: The loader concatenates all embedded PTX files into one unit, so
    #: duplicate symbol names across files collide (Section III-A fix 2).
    combined_ptx_load: bool = False

    #: The loader does not resolve dynamically linked libraries, so
    #: kernels that live in a dynamic library cannot be found
    #: (Section III-A fix 1).
    no_dynamic_library_search: bool = False

    #: FP16 conversions unsupported (pre-paper state, Section III-D.1).
    fp16_unsupported: bool = False

    #: FMA contraction mismatch: model FP16 multiply-add as a fused FMA
    #: with full intermediate precision (hardware/SASS behaviour) while
    #: the golden reference rounds between multiply and add.  Leaving
    #: this False makes both round identically (the paper leaves exact
    #: FP16 simulation as future work).
    fp16_fma_contraction: bool = False

    def describe(self) -> list[str]:
        """Human-readable list of enabled quirks."""
        enabled = []
        for name in self.__dataclass_fields__:
            if getattr(self, name):
                enabled.append(name)
        return enabled


#: The fully fixed configuration (paper's end state).
FIXED = LegacyQuirks()

#: The configuration approximating stock GPGPU-Sim before the paper.
STOCK_GPGPUSIM = LegacyQuirks(
    rem_ignores_type=True,
    bfe_unsigned_only=True,
    brev_unsupported=True,
    stream_wait_event_unsupported=True,
    cu_launch_kernel_unsupported=True,
    single_texref_per_name=True,
    rebind_texture_errors=True,
    combined_ptx_load=True,
    no_dynamic_library_search=True,
    fp16_unsupported=True,
)
