"""Dynamic sanitizer core: analysis-guided memcheck + racecheck.

One :class:`Sanitizer` observes kernel launches across every execution
tier and accumulates deduplicated findings:

========  ==========================================================
 rule      meaning
========  ==========================================================
 S601      global access outside every live allocation (memcheck)
 S602      global load of never-initialized bytes (memcheck)
 S603      shared-memory data race: two threads touch the same byte
           between barriers, at least one writing (racecheck)
 S604      barrier reached by a divergent (partial) warp (synccheck)
 S605      misaligned global access for the access width
========  ==========================================================

The "analysis-guided" part: before the launch runs, the value-range
pass (:mod:`repro.analysis.ranges`) evaluates each memory
instruction's affine address expression against the concrete grid and
allocation table.  A pc that is *proved* in-bounds / aligned /
initialized is dropped from the corresponding dynamic check entirely —
the common regular-kernel case (``a[tid]`` with an exact-cover grid)
sanitizes at near-zero cost, and the dynamic machinery only arms where
the proof fails.  Proofs never relax the *tracking* side: stores
always mark shadow bytes and always record race state, because a
proven-safe store that never dynamically executes (predication,
branches) must not pretend it initialized its interval.

Scalar tiers hook in as an ``on_exec`` observer (:meth:`Sanitizer.hook`);
the megablock vector tier performs the equivalent checks as masked
array operations (:mod:`repro.functional.megablock`) against the same
proof sets and reports through the same :meth:`record` funnel, so a
defect produces the same ``(kernel, rule, pc)`` finding at every tier.
"""

from __future__ import annotations

from repro.analysis.ranges import (
    ALIGN, BOUNDS, INIT, INJECTIVE, kernel_facts, prove_launch)
from repro.functional.executor import ExecRecord, lanes_of

#: Dynamic sanitizer rules (documentation + report ordering).
RULES = ("S601", "S602", "S603", "S604", "S605")

#: Access widths with an alignment requirement.
_ALIGNED_WIDTHS = (2, 4, 8, 16)

#: Race-table marker for "several threads read this byte this epoch".
_MANY_READERS = -2


class Sanitizer:
    """Shadow-state sanitizer shared by all execution tiers.

    The object is launch-reusable: ``begin_launch`` resets per-launch
    state (proof sets, race tables, barrier epochs) while findings and
    counters accumulate across launches, so one sanitizer can watch an
    entire workload (e.g. all of LeNet's kernels) and report once.
    """

    def __init__(self, *, tracer=None) -> None:
        #: (kernel, rule, pc) -> finding entry (first message, count).
        self.findings: dict[tuple[str, str, int], dict] = {}
        self.counters: dict[str, int] = {
            "launches": 0, "checked_accesses": 0,
            "skipped_proven": 0, "findings": 0}
        #: kernel name -> Kernel (for report-time producer slices).
        self.kernels: dict = {}
        self.tracer = tracer
        # Per-launch state (reset by begin_launch).
        self.proofs: dict[int, frozenset] = {}
        self.facts: dict = {}
        self._launch = None
        self._gm = None
        self._kernel_name = ""
        self._epoch: dict[int, int] = {}
        self._writes: dict[int, dict[int, tuple[int, int]]] = {}
        self._reads: dict[int, dict[int, tuple[int, int]]] = {}
        #: (cta, warp) -> [(exit pc, lane mask), ...] of retired lanes.
        self._exited: dict[tuple[int, int], list[tuple[int, int]]] = {}

    # ------------------------------------------------------------------
    # Launch lifecycle
    # ------------------------------------------------------------------
    def begin_launch(self, launch, facts=None) -> None:
        """Arm the sanitizer for one launch.

        *facts* lets a megablock plan supply its cached affine memory
        facts; otherwise they are computed (and cached on the kernel).
        The proof sets are launch-specific — the same kernel can be
        fully proven under one grid and need dynamic checks under
        another — so they are always re-evaluated here.
        """
        kernel = launch.kernel
        self.kernels[kernel.name] = kernel
        self._kernel_name = kernel.name
        self._launch = launch
        self._gm = launch.global_mem
        self.facts = facts if facts is not None else kernel_facts(kernel)
        self.proofs = prove_launch(self.facts, launch, launch.global_mem)
        self._epoch = {}
        self._writes = {}
        self._reads = {}
        self._exited = {}
        self.counters["launches"] += 1
        if self.tracer is not None and self.tracer.enabled:
            proven = sum(len(p) for p in self.proofs.values())
            self.tracer.instant(
                f"sanitize:arm:{kernel.name}", cat="sanitize",
                args={"facts": len(self.facts), "proofs": proven})

    # ------------------------------------------------------------------
    # Finding funnel (shared by scalar hook and megablock checks)
    # ------------------------------------------------------------------
    def record(self, rule: str, kernel: str, pc: int, message: str, *,
               count: int = 1) -> None:
        """Report one defect occurrence, deduplicated by (kernel, rule, pc).

        The first dynamic occurrence wins the message slot (it carries
        the most useful concrete address); repeats only bump ``count``.
        """
        key = (kernel, rule, pc)
        entry = self.findings.get(key)
        if entry is None:
            entry = {"kernel": kernel, "rule": rule, "pc": pc,
                     "message": message, "count": 0}
            self.findings[key] = entry
            self.counters["findings"] += 1
            if self.tracer is not None and self.tracer.enabled:
                self.tracer.instant(
                    f"sanitize:{rule}:{kernel}@{pc}", cat="sanitize",
                    args={"message": message})
                self.tracer.counter("sanitizer", dict(self.counters))
        entry["count"] += count

    def findings_list(self) -> list[dict]:
        """Stable, merge-friendly finding dicts."""
        return [dict(self.findings[key])
                for key in sorted(self.findings)]

    @staticmethod
    def merge_findings(groups) -> list[dict]:
        """Merge per-shard finding lists deterministically.

        Findings are keyed by (kernel, rule, pc); counts add, and the
        message of the lowest-ranked shard wins — so a 2-shard run
        reports exactly the same finding set as a 1-process run of the
        same defect, with the same representative message.
        """
        merged: dict[tuple[str, str, int], dict] = {}
        for group in groups:
            for entry in group:
                key = (entry["kernel"], entry["rule"], entry["pc"])
                kept = merged.get(key)
                if kept is None:
                    merged[key] = dict(entry)
                else:
                    kept["count"] += entry["count"]
        return [dict(merged[key]) for key in sorted(merged)]

    # ------------------------------------------------------------------
    # Scalar-tier observer (reference / fastpath / superblock step path)
    # ------------------------------------------------------------------
    def hook(self, record: ExecRecord) -> None:
        """``on_exec`` observer: check one executed instruction."""
        inst = record.inst
        opcode = inst.opcode
        if opcode == "bar":
            self._check_barrier(record)
            return
        if opcode in ("exit", "ret"):
            self._note_exit(record)
            return
        accesses = record.mem_accesses
        if not accesses:
            return
        lanes = self._taken_lanes(record)
        threads = None
        if len(lanes) == len(accesses):
            warp = record.warp
            threads = [warp.thread_linear[lane] for lane in lanes]
        proofs = self.proofs.get(record.pc, frozenset())
        racecheck = opcode not in ("atom", "red")
        for index, (space, addr, nbytes, is_write) in enumerate(accesses):
            if space == "global":
                self._check_global(record.pc, addr, nbytes, is_write,
                                   proofs)
            elif space == "shared" and racecheck and threads is not None:
                self._check_shared(record, addr, nbytes, is_write,
                                   threads[index], proofs)

    @staticmethod
    def _taken_lanes(record: ExecRecord) -> tuple[int, ...]:
        """Re-derive the predicated lane set of an executed instruction.

        ``on_exec`` fires after dispatch, but guard predicates are never
        clobbered by memory instructions, so the taken set is still
        recomputable from the register files — sparing the hot
        ``step_warp`` path from carrying a lanes field for observers.
        """
        inst = record.inst
        lanes = lanes_of(record.active_mask)
        if inst.pred is None:
            return lanes
        regs = record.warp.regs
        taken = 0
        for lane in lanes:
            if regs[lane].get(inst.pred, 0) & 1:
                taken |= 1 << lane
        if inst.pred_negated:
            taken = record.active_mask & ~taken
        return lanes_of(taken)

    # -- memcheck (global) ---------------------------------------------
    def _check_global(self, pc: int, addr: int, nbytes: int,
                      is_write: bool, proofs: frozenset) -> None:
        kernel = self._kernel_name
        kind = "store" if is_write else "load"
        counters = self.counters
        in_bounds = True
        if BOUNDS in proofs:
            counters["skipped_proven"] += 1
        else:
            counters["checked_accesses"] += 1
            span = self._gm.allocation_containing(addr)
            if span is None:
                in_bounds = False
                self.record(
                    "S601", kernel, pc,
                    f"out-of-bounds global {kind} of {nbytes} bytes at "
                    f"{addr:#x}: no live allocation contains the address")
            elif addr + nbytes > span[0] + span[1]:
                in_bounds = False
                self.record(
                    "S601", kernel, pc,
                    f"out-of-bounds global {kind} of {nbytes} bytes at "
                    f"{addr:#x}: overruns allocation "
                    f"[{span[0]:#x}, {span[0] + span[1]:#x})")
        if nbytes in _ALIGNED_WIDTHS:
            if ALIGN in proofs:
                counters["skipped_proven"] += 1
            elif addr % nbytes:
                self.record(
                    "S605", kernel, pc,
                    f"misaligned global {kind}: address {addr:#x} is not "
                    f"{nbytes}-byte aligned")
        if not is_write and in_bounds:
            if INIT in proofs:
                counters["skipped_proven"] += 1
            else:
                shadow = self._gm.shadow
                if (shadow is not None
                        and not shadow.range_initialized(addr, nbytes)):
                    self.record(
                        "S602", kernel, pc,
                        f"global load of {nbytes} uninitialized bytes at "
                        f"{addr:#x} (never written by host or device)")

    # -- racecheck (shared) --------------------------------------------
    def _check_shared(self, record: ExecRecord, addr: int, nbytes: int,
                      is_write: bool, thread: int,
                      proofs: frozenset) -> None:
        """Byte-granular barrier-interval race detection.

        Classic happens-before-lite: within one barrier epoch of one
        CTA, a byte touched by two different threads with at least one
        write is a race.  An INJECTIVE proof (every thread's address
        provably distinct) waives only the write-vs-prior-write check
        of that store pc; the store still *records* its bytes and still
        races against reads — a read-then-injective-write conflict is
        real even when the stores never collide with each other.
        """
        cta = record.warp.cta.cta_linear
        epoch = self._epoch.get(cta, 0)
        writes = self._writes.setdefault(cta, {})
        reads = self._reads.setdefault(cta, {})
        kernel = self._kernel_name
        pc = record.pc
        self.counters["checked_accesses"] += 1
        ww_waived = is_write and INJECTIVE in proofs
        if ww_waived:
            self.counters["skipped_proven"] += 1
        for byte in range(addr, addr + nbytes):
            prior_write = writes.get(byte)
            if (prior_write is not None and prior_write[0] == epoch
                    and prior_write[1] != thread and not ww_waived):
                what = ("write-after-write" if is_write
                        else "read-after-write")
                self.record(
                    "S603", kernel, pc,
                    f"shared-memory race: {what} on byte {byte:#x} by "
                    f"threads {prior_write[1]} and {thread} with no "
                    f"barrier between them")
            if is_write:
                prior_read = reads.get(byte)
                if (prior_read is not None and prior_read[0] == epoch
                        and prior_read[1] != thread):
                    reader = ("multiple threads"
                              if prior_read[1] == _MANY_READERS
                              else f"thread {prior_read[1]}")
                    self.record(
                        "S603", kernel, pc,
                        f"shared-memory race: write-after-read on byte "
                        f"{byte:#x} — {reader} read it, thread {thread} "
                        "overwrites it with no barrier between them")
                writes[byte] = (epoch, thread)
            else:
                prior_read = reads.get(byte)
                if (prior_read is not None and prior_read[0] == epoch
                        and prior_read[1] != thread):
                    reads[byte] = (epoch, _MANY_READERS)
                else:
                    reads[byte] = (epoch, thread)

    # -- synccheck (barriers, epochs, exits) ---------------------------
    def _check_barrier(self, record: ExecRecord) -> None:
        warp = record.warp
        cta = warp.cta
        if record.inst.pred is None:
            # Expected arrivals: the warp's full lane set minus lanes
            # that exited at a pc *before* the barrier.  A guard-style
            # early exit (``@p bra $exit_guard`` above every bar) is
            # hardware-legal — exited threads stop counting toward the
            # rendezvous — but a lane whose exit lies after the bar got
            # there by branching *around* it: the divergent-barrier
            # defect synccheck exists to catch, even though this
            # in-order simulator happens to retire that lane first.
            expected = 0
            for lane, tid in enumerate(warp.tids):
                if tid is not None:
                    expected |= 1 << lane
            for exit_pc, exited in self._exited.get(
                    (cta.cta_linear, warp.warp_index), ()):
                if exit_pc < record.pc:
                    expected &= ~exited
            if record.active_mask != expected:
                self.record(
                    "S604", self._kernel_name, record.pc,
                    f"divergent barrier: warp {warp.warp_index} of CTA "
                    f"{cta.cta_linear} arrived with lane mask "
                    f"{record.active_mask:#010x}, expected "
                    f"{expected:#010x} — some threads of the warp can "
                    "never reach this bar.sync")
        # The warp was parked (at_barrier set) before this hook fired;
        # if it completed the rendezvous, the barrier interval ends and
        # race tracking starts a fresh epoch for the CTA.
        if all(w.finished or w.at_barrier for w in cta.warps):
            self._epoch[cta.cta_linear] = (
                self._epoch.get(cta.cta_linear, 0) + 1)

    def seed_exit(self, cta: int, warp_index: int, pc: int,
                  lane_mask: int) -> None:
        """Pre-record retired lanes across a tier handoff.

        The megablock bailout path calls this for lanes that exited
        inside the vector portion of the launch, so barriers executed
        by the scalar continuation still see the correct expected
        arrival sets.
        """
        self._exited.setdefault((cta, warp_index), []).append(
            (pc, lane_mask))

    def _note_exit(self, record: ExecRecord) -> None:
        """Track per-warp exited lanes so barrier expectations shrink."""
        inst = record.inst
        if inst.pred is None:
            taken = record.active_mask
        else:
            taken = 0
            regs = record.warp.regs
            for lane in lanes_of(record.active_mask):
                if regs[lane].get(inst.pred, 0) & 1:
                    taken |= 1 << lane
            if inst.pred_negated:
                taken = record.active_mask & ~taken
        warp = record.warp
        key = (warp.cta.cta_linear, warp.warp_index)
        self._exited.setdefault(key, []).append((record.pc, taken))
