"""Shadow state for the dynamic sanitizer: initialized-byte tracking.

compute-sanitizer's memcheck keeps two shadow maps per allocation —
*addressable* and *initialized*.  Our global memory already knows the
exact allocation table (the bump allocator records every
``cudaMalloc``), so addressability is answered directly by
:meth:`repro.functional.memory.GlobalMemory.allocation_containing`;
the shadow only needs the second map: one byte of shadow per byte of
payload, flipped to 1 the first time the byte is written.

The shadow attaches to a :class:`GlobalMemory` (``gm.shadow``) and is
fed by ``gm.write`` itself, so host ``memcpy``s, ``memset``s and
scalar-tier kernel stores all mark initialization with no extra
plumbing.  The megablock tier works on a dense mirror instead:
:meth:`dense_init` exports the shadow as a flat ``uint8`` array for
vectorized gathers and :meth:`absorb_dense` folds the chunk's store
marks back.  Shard workers serialize the maps with
:meth:`snapshot`/:meth:`restore` so a fanned-out launch starts from
the parent's initialization state.

Soundness stance: a byte is only ever marked *initialized*, never
unmarked — frees keep their map (a re-used address range would be
freshly tracked only if the allocator recycled addresses, which the
bump allocator never does).  Monotonicity is what lets
:func:`repro.analysis.ranges.prove_launch` turn a launch-time
"interval fully initialized" check into a whole-launch INIT proof.
"""

from __future__ import annotations

import numpy as np

from repro.functional.memory import GlobalMemory


class ShadowMemory:
    """Per-allocation initialized-byte maps for one global memory."""

    def __init__(self, gm: GlobalMemory) -> None:
        self._gm = gm
        #: allocation base -> one shadow byte (0/1) per payload byte.
        self._maps: dict[int, bytearray] = {}
        #: allocation bases proven fully initialized (fast-path skip).
        self._full: set[int] = set()

    # -- marking -------------------------------------------------------
    def _map_for(self, base: int, size: int) -> bytearray:
        shadow = self._maps.get(base)
        if shadow is None or len(shadow) != size:
            shadow = bytearray(size)
            self._maps[base] = shadow
            self._full.discard(base)
        return shadow

    def mark_initialized(self, addr: int, nbytes: int) -> None:
        """Record that ``[addr, addr+nbytes)`` now holds written data.

        Ranges (or parts of ranges) outside any live allocation are
        ignored — the sanitizer reports those as out-of-bounds findings
        instead of tracking them.
        """
        gm = self._gm
        end = addr + nbytes
        while addr < end:
            span = gm.allocation_containing(addr)
            if span is None:
                addr += 1  # skip the unallocated byte, re-probe
                continue
            base, size = span
            if base in self._full:
                addr = base + size
                continue
            lo = addr - base
            hi = min(end - base, size)
            shadow = self._map_for(base, size)
            shadow[lo:hi] = b"\x01" * (hi - lo)
            addr = base + hi

    # -- queries -------------------------------------------------------
    def range_initialized(self, addr: int, nbytes: int) -> bool:
        """True iff every byte of ``[addr, addr+nbytes)`` was written."""
        if nbytes <= 0:
            return True
        span = self._gm.allocation_containing(addr)
        if span is None:
            return False
        base, size = span
        if addr + nbytes > base + size:
            return False  # straddles the allocation end
        if base in self._full:
            return True
        shadow = self._maps.get(base)
        if shadow is None:
            return False
        lo = addr - base
        window = shadow[lo:lo + nbytes]
        if 0 in window:
            return False
        if len(shadow) == size and 0 not in shadow:
            self._full.add(base)
        return True

    # -- dense export / absorb (megablock tier) ------------------------
    def dense_init(self, lo: int, span: int) -> np.ndarray:
        """Flat 0/1 ``uint8`` map over ``[lo, lo+span)`` for gathers."""
        dense = np.zeros(max(span, 0), np.uint8)
        for base, shadow in self._maps.items():
            start = base - lo
            if start >= span or start + len(shadow) <= 0:
                continue
            src = np.frombuffer(bytes(shadow), np.uint8)
            a = max(start, 0)
            b = min(start + len(shadow), span)
            dense[a:b] = src[a - start:b - start]
        return dense

    def absorb_dense(self, lo: int, dense: np.ndarray) -> None:
        """Mark every byte set in *dense* (a :meth:`dense_init`-shaped
        array mutated by the megablock tier's stores) as initialized."""
        for base, size in self._gm.allocations.items():
            a = base - lo
            b = a + size
            if a >= len(dense) or b <= 0:
                continue
            a0, b0 = max(a, 0), min(b, len(dense))
            window = dense[a0:b0]
            if not window.any():
                continue
            shadow = self._map_for(base, size)
            view = np.frombuffer(shadow, np.uint8)
            np.maximum(view[a0 - a:b0 - a], window,
                       out=view[a0 - a:b0 - a])
            self._full.discard(base)

    # -- shard transport -----------------------------------------------
    def snapshot(self) -> dict[int, bytes]:
        return {base: bytes(shadow)
                for base, shadow in self._maps.items()}

    def restore(self, state: dict[int, bytes]) -> None:
        self._maps = {int(base): bytearray(shadow)
                      for base, shadow in state.items()}
        self._full = set()


def attach_shadow(gm: GlobalMemory) -> ShadowMemory:
    """Attach (or return the existing) shadow tracker of *gm*.

    Must run before the workload's host uploads: ``gm.write`` marks
    initialization only while a shadow is attached, and there is no
    way to reconstruct which bytes of a pre-existing page were written
    deliberately versus materialised by a read.
    """
    if gm.shadow is None:
        gm.shadow = ShadowMemory(gm)
    return gm.shadow
