"""``repro-sanitize``: command-line front end of :mod:`repro.sanitize`.

Three modes, one per stage of the analysis-guided sanitizer:

* ``--all-embedded`` — the *static* stage alone: run the value-range
  memory lints (M501 shared-overlap, M502 static OOB, M503 definite
  misalignment, D303 non-pointer load) over every PTX translation unit
  embedded in the cuDNN/cuBLAS binaries.  The shipped corpus must be
  clean; any finding fails the run.
* ``--corpus`` — the *dynamic* stage's ground truth: launch every
  seeded-defect kernel (and every clean control) under the sanitizer
  at the requested tier, asserting each planted defect is reported at
  its planted pc and each clean kernel stays silent.
* ``--workload NAME`` — sanitize a registered service workload
  (``saxpy`` / ``conv`` / ``lenet``) end to end via the same
  ``{"sanitize": true}`` job config the REST service accepts.

Exit codes: 0 clean / all detected, 1 findings or missed defects,
2 usage / input errors.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.functional.executor import FAST_MODES

#: Static-stage rules (the range pass's lints) selected by --all-embedded.
STATIC_RULES = ("M501", "M502", "M503", "D303")


def _iter_embedded():
    """(file_id, ptx_text) per unique embedded translation unit."""
    from repro.cudnn.library import build_application_binary
    seen: set[str] = set()
    for embedded in build_application_binary().embedded:
        if embedded.file_id in seen:
            continue
        seen.add(embedded.file_id)
        yield embedded.file_id, embedded.text


def _run_static(fmt: str) -> int:
    from repro.analysis import analyze_module, sort_findings
    from repro.errors import ReproError
    from repro.ptx.parser import parse_module
    findings = []
    files = 0
    for file_id, text in _iter_embedded():
        try:
            module = parse_module(text, file_id)
        except ReproError as error:
            print(f"repro-sanitize: {file_id}: parse failed: {error}",
                  file=sys.stderr)
            return 2
        files += 1
        findings.extend(f for f in analyze_module(module)
                        if f.rule in STATIC_RULES)
    findings = sort_findings(findings)
    if fmt == "json":
        print(json.dumps({
            "files": files,
            "findings": [f.to_dict() for f in findings],
        }, indent=2))
    elif not findings:
        print(f"static stage clean: {files} embedded files, "
              "no range-lint findings")
    else:
        for finding in findings:
            print(finding.render())
        print(f"{len(findings)} finding(s) in {files} embedded files")
    return 1 if findings else 0


def _run_corpus(fmt: str, fast_mode: str, shards: int) -> int:
    from repro.sanitize.corpus import CORPUS, run_entry
    rows = []
    failed = False
    for name in CORPUS:
        run = run_entry(name, fast_mode=fast_mode, shards=shards)
        if not run.detected:
            failed = True
        rows.append({
            "name": name,
            "expected_rule": run.entry.rule,
            "expected_pc": run.expected_pc,
            "detected": run.detected,
            "findings": run.findings,
        })
    if fmt == "json":
        print(json.dumps({
            "fast_mode": fast_mode, "shards": shards, "entries": rows,
        }, indent=2))
    else:
        for row in rows:
            status = "ok  " if row["detected"] else "MISS"
            want = (f"{row['expected_rule']} @ pc {row['expected_pc']}"
                    if row["expected_rule"] else "clean")
            got = ", ".join(
                f"{f['rule']} @ pc {f['pc']} (x{f['count']})"
                for f in row["findings"]) or "no findings"
            print(f"{status} {row['name']:<20} expect {want:<18} "
                  f"got {got}")
        verdict = ("corpus FAILED" if failed
                   else "corpus passed: every defect detected, every "
                        "clean kernel silent")
        print(verdict)
    return 1 if failed else 0


def _run_workload(name: str, fmt: str, fast_mode: str, shards: int,
                  seed: int) -> int:
    from repro.sanitize.report import render_json, render_text
    from repro.service.jobs import REGISTRY
    runner = REGISTRY.get(name)
    if runner is None:
        print(f"repro-sanitize: unknown workload {name!r} "
              f"(have: {', '.join(sorted(REGISTRY))})", file=sys.stderr)
        return 2
    config = {"sanitize": True, "fast_mode": fast_mode}
    if shards:
        config["shards"] = shards
    result = runner(config, seed)
    report = result.get("sanitize", {})
    findings = report.get("findings", [])
    counters = report.get("counters", {})
    render = render_json if fmt == "json" else render_text
    print(render(findings, counters=counters))
    return 1 if findings else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-sanitize",
        description="Analysis-guided sanitizer: static range lints "
                    "over the embedded PTX corpus, the seeded-defect "
                    "dynamic corpus, or a sanitized workload run.")
    parser.add_argument("--all-embedded", action="store_true",
                        help="static stage: range-lint every embedded "
                             "PTX translation unit")
    parser.add_argument("--corpus", action="store_true",
                        help="dynamic stage: run the seeded-defect "
                             "corpus and assert detection")
    parser.add_argument("--workload", metavar="NAME", default=None,
                        help="sanitize one registered service workload")
    parser.add_argument("--fast-mode", choices=FAST_MODES,
                        default="megablock",
                        help="execution tier for --corpus/--workload "
                             "(default: megablock)")
    parser.add_argument("--shards", type=int, default=0,
                        help="route --corpus/--workload through the "
                             "sharded service backend")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload seed (default: 0)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format")
    args = parser.parse_args(argv)

    if not (args.all_embedded or args.corpus or args.workload):
        parser.error("nothing to do: give --all-embedded, --corpus "
                     "and/or --workload NAME")
    status = 0
    if args.all_embedded:
        status = max(status, _run_static(args.format))
    if args.corpus and status < 2:
        status = max(status, _run_corpus(args.format, args.fast_mode,
                                         args.shards))
    if args.workload and status < 2:
        status = max(status, _run_workload(
            args.workload, args.format, args.fast_mode, args.shards,
            args.seed))
    return status


if __name__ == "__main__":
    sys.exit(main())
