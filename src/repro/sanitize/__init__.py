"""Analysis-guided dynamic sanitizer (memcheck / racecheck / synccheck).

The runtime counterpart of :mod:`repro.analysis.ranges`: value-range
proofs decide *which* accesses still need watching, and shadow-state
instrumentation watches them — per-allocation initialized-byte maps
for global memory, barrier-epoch last-accessor tables for shared
memory — across every execution tier, from the reference interpreter
to the megablock vector machine and the sharded service fan-out.

Public surface:

* :class:`Sanitizer` — the findings accumulator and scalar-tier hook.
* :class:`ShadowMemory` / :func:`attach_shadow` — initialized-byte
  tracking wired into :class:`repro.functional.memory.GlobalMemory`.
* :func:`render_text` / :func:`render_json` — report rendering with
  producer-chain slices.
* :data:`DEFECTS` / :data:`CLEAN` / :func:`run_entry` — the seeded
  defect corpus and its harness (the CI must-detect gate).
"""

from __future__ import annotations

from repro.sanitize.core import RULES, Sanitizer
from repro.sanitize.corpus import CLEAN, CORPUS, DEFECTS, run_entry
from repro.sanitize.report import RULE_TITLES, render_json, render_text
from repro.sanitize.shadow import ShadowMemory, attach_shadow

__all__ = [
    "CLEAN", "CORPUS", "DEFECTS", "RULES", "RULE_TITLES",
    "Sanitizer", "ShadowMemory", "attach_shadow", "render_json",
    "render_text", "run_entry",
]
