"""Seeded-defect kernel corpus: ground truth for the sanitizer.

Each entry plants exactly one class of memory/synchronization defect
in an otherwise well-formed kernel and records where the sanitizer
must report it — ``(rule, defect instruction)``.  The CI gate runs
every defect through every execution tier (reference, fastpath,
superblock, megablock) and through a 2-shard service fan-out, and
requires the expected finding at the expected pc each time; the
``CLEAN`` entries must produce zero findings everywhere, pinning the
false-positive rate of the shipped checks to zero on known-good code.

The geometries are chosen so the *static* range proofs fail exactly at
the planted site (otherwise the dynamic check would be skipped and the
corpus would only test the prover): out-of-bounds entries launch more
threads than the allocation covers, the uninitialized entry leaves the
upper half of its input unwritten, and so on.  Every defect spans two
CTAs so a 2-shard run genuinely splits it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.cuda.runtime import CudaRuntime, FunctionalBackend
from repro.ptx.builder import PTXBuilder
from repro.ptx.parser import parse_module

#: Lane/thread geometry shared by the corpus kernels.
_WARP = 32


# ----------------------------------------------------------------------
# Kernel builders
# ----------------------------------------------------------------------
def _copy_kernel(name: str, *, offset: int = 0) -> str:
    """``out[gtid] = in[gtid]`` (optionally with a byte offset)."""
    b = PTXBuilder(name, [("src", "u64"), ("dst", "u64")])
    src = b.ld_param("u64", "src")
    dst = b.ld_param("u64", "dst")
    gtid = b.global_tid_x()
    value = b.load_global_f32(b.elem_addr(src, gtid), offset=offset)
    b.store_global_f32(b.elem_addr(dst, gtid), value)
    return b.build()


def _oob_load() -> str:
    return _copy_kernel("oob_load")


def _oob_store() -> str:
    return _copy_kernel("oob_store")


def _uninit_read() -> str:
    return _copy_kernel("uninit_read")


def _misaligned() -> str:
    return _copy_kernel("misaligned", offset=2)


def _ww_race() -> str:
    """Every thread of the CTA stores to shared byte 0 — then a barrier
    and a read-back, so only the colliding store is wrong."""
    b = PTXBuilder("ww_race", [("dst", "u64")])
    b.shared("buf", "f32", _WARP)
    dst = b.ld_param("u64", "dst")
    tid = b.special("%tid.x")
    base = b.reg("u64")
    b.ins("mov.u64", base, "buf")
    value = b.reg("f32")
    b.ins("cvt.rn.f32.u32", value, tid)
    b.ins("st.shared.f32", f"[{base}]", value)  # all lanes, same bytes
    b.bar_sync()
    got = b.reg("f32")
    b.ins("ld.shared.f32", got, f"[{base}]")
    gtid = b.global_tid_x()
    b.store_global_f32(b.elem_addr(dst, gtid), got)
    return b.build()


def _rw_race() -> str:
    """``buf[tid] = x`` then ``buf[(tid+1) % 32]`` with no barrier —
    the classic missing-``__syncthreads`` neighbour read."""
    b = PTXBuilder("rw_race", [("src", "u64"), ("dst", "u64")])
    b.shared("buf", "f32", _WARP)
    src = b.ld_param("u64", "src")
    dst = b.ld_param("u64", "dst")
    tid = b.special("%tid.x")
    gtid = b.global_tid_x()
    base = b.reg("u64")
    b.ins("mov.u64", base, "buf")
    value = b.load_global_f32(b.elem_addr(src, gtid))
    b.ins("st.shared.f32", f"[{b.elem_addr(base, tid)}]", value)
    partner = b.reg("u32")
    b.ins("add.u32", partner, tid, "1")
    b.ins("and.b32", partner, partner, str(_WARP - 1))
    got = b.reg("f32")
    b.ins("ld.shared.f32", got, f"[{b.elem_addr(base, partner)}]")
    b.store_global_f32(b.elem_addr(dst, gtid), got)
    return b.build()


def _divergent_barrier() -> str:
    """Half the warp branches around a ``bar.sync`` — synccheck's
    canonical "divergent thread(s) in warp" defect."""
    b = PTXBuilder("divergent_barrier", [("dst", "u64")])
    dst = b.ld_param("u64", "dst")
    tid = b.special("%tid.x")
    pred = b.reg("pred")
    b.ins("setp.lt.u32", pred, tid, str(_WARP // 2))
    skip = b.fresh_label("skip")
    b.ins(f"bra {skip}", pred=pred)
    b.bar_sync()  # only lanes 16..31 arrive
    b.place(skip)
    gtid = b.global_tid_x()
    one = b.imm_f32(1.0)
    b.store_global_f32(b.elem_addr(dst, gtid), one)
    return b.build()


def _clean_guarded() -> str:
    """Over-provisioned grid with a tid guard: bounds are dynamically
    fine but statically unprovable, so every check actually runs."""
    b = PTXBuilder("clean_guarded",
                   [("src", "u64"), ("dst", "u64"), ("n", "u32")])
    src = b.ld_param("u64", "src")
    dst = b.ld_param("u64", "dst")
    n = b.ld_param("u32", "n")
    gtid = b.global_tid_x()
    b.guard_tid_below(gtid, n)
    value = b.load_global_f32(b.elem_addr(src, gtid))
    b.store_global_f32(b.elem_addr(dst, gtid), value)
    return b.build()


def _clean_tile() -> str:
    """Barrier-separated neighbour exchange: the same access pattern as
    ``rw_race`` but correctly synchronized — must stay silent."""
    b = PTXBuilder("clean_tile", [("src", "u64"), ("dst", "u64")])
    b.shared("buf", "f32", _WARP)
    src = b.ld_param("u64", "src")
    dst = b.ld_param("u64", "dst")
    tid = b.special("%tid.x")
    gtid = b.global_tid_x()
    base = b.reg("u64")
    b.ins("mov.u64", base, "buf")
    value = b.load_global_f32(b.elem_addr(src, gtid))
    b.ins("st.shared.f32", f"[{b.elem_addr(base, tid)}]", value)
    b.bar_sync()
    partner = b.reg("u32")
    b.ins("add.u32", partner, tid, "1")
    b.ins("and.b32", partner, partner, str(_WARP - 1))
    got = b.reg("f32")
    b.ins("ld.shared.f32", got, f"[{b.elem_addr(base, partner)}]")
    b.store_global_f32(b.elem_addr(dst, gtid), got)
    return b.build()


# ----------------------------------------------------------------------
# Launch setups (allocate, seed host data, return geometry + args)
# ----------------------------------------------------------------------
def _floats(count: int) -> np.ndarray:
    return np.arange(count, dtype=np.float32)


def _setup_oob_load(rt: CudaRuntime):
    src = rt.upload_f32(_floats(32))       # 32 floats for 64 threads
    dst = rt.malloc(64 * 4)
    return (2, 1, 1), (_WARP, 1, 1), [src, dst]


def _setup_oob_store(rt: CudaRuntime):
    src = rt.upload_f32(_floats(64))
    dst = rt.malloc(32 * 4)                # 32 floats for 64 threads
    return (2, 1, 1), (_WARP, 1, 1), [src, dst]


def _setup_uninit_read(rt: CudaRuntime):
    src = rt.malloc(32 * 4)
    rt.memcpy_h2d(src, _floats(16))        # lower half only
    dst = rt.malloc(32 * 4)
    return (2, 1, 1), (16, 1, 1), [src, dst]


def _setup_misaligned(rt: CudaRuntime):
    src = rt.upload_f32(_floats(33))       # +1 float: offset 2 stays
    dst = rt.malloc(32 * 4)                # in bounds for 32 threads
    return (2, 1, 1), (16, 1, 1), [src, dst]


def _setup_ww_race(rt: CudaRuntime):
    dst = rt.malloc(64 * 4)
    return (2, 1, 1), (_WARP, 1, 1), [dst]


def _setup_rw_race(rt: CudaRuntime):
    src = rt.upload_f32(_floats(64))
    dst = rt.malloc(64 * 4)
    return (2, 1, 1), (_WARP, 1, 1), [src, dst]


def _setup_divergent_barrier(rt: CudaRuntime):
    dst = rt.malloc(64 * 4)
    return (2, 1, 1), (_WARP, 1, 1), [dst]


def _setup_clean_exact(rt: CudaRuntime):
    src = rt.upload_f32(_floats(64))
    dst = rt.malloc(64 * 4)
    return (2, 1, 1), (_WARP, 1, 1), [src, dst]


def _setup_clean_guarded(rt: CudaRuntime):
    n = 50                                 # grid covers 64 threads
    src = rt.upload_f32(_floats(n))
    dst = rt.malloc(n * 4)
    return (2, 1, 1), (_WARP, 1, 1), [src, dst, n]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CorpusEntry:
    """One corpus kernel: source, launch recipe, expected finding."""

    name: str
    build: Callable[[], str]
    setup: Callable[[CudaRuntime], tuple]
    rule: str | None         # expected rule, None for clean entries
    site: tuple[str, str, int] | None  # (opcode, space, nth) of defect

    def expected_pc(self) -> int | None:
        """Body index of the planted defect instruction."""
        if self.site is None:
            return None
        kernel = parse_module(self.build(), self.name).kernel(self.name)
        opcode, space, nth = self.site
        seen = 0
        for inst in kernel.body:
            if inst.opcode == opcode and (space is None
                                          or inst.space == space):
                if seen == nth:
                    return inst.index
                seen += 1
        raise LookupError(
            f"corpus entry {self.name}: no {opcode}.{space} #{nth}")


DEFECTS: dict[str, CorpusEntry] = {
    entry.name: entry for entry in (
        CorpusEntry("oob_load", _oob_load, _setup_oob_load,
                    "S601", ("ld", "global", 0)),
        CorpusEntry("oob_store", _oob_store, _setup_oob_store,
                    "S601", ("st", "global", 0)),
        CorpusEntry("uninit_read", _uninit_read, _setup_uninit_read,
                    "S602", ("ld", "global", 0)),
        CorpusEntry("misaligned", _misaligned, _setup_misaligned,
                    "S605", ("ld", "global", 0)),
        CorpusEntry("ww_race", _ww_race, _setup_ww_race,
                    "S603", ("st", "shared", 0)),
        CorpusEntry("rw_race", _rw_race, _setup_rw_race,
                    "S603", ("ld", "shared", 0)),
        CorpusEntry("divergent_barrier", _divergent_barrier,
                    _setup_divergent_barrier,
                    "S604", ("bar", None, 0)),
    )
}

CLEAN: dict[str, CorpusEntry] = {
    entry.name: entry for entry in (
        CorpusEntry("clean_exact", lambda: _copy_kernel("clean_exact"),
                    _setup_clean_exact, None, None),
        CorpusEntry("clean_guarded", _clean_guarded,
                    _setup_clean_guarded, None, None),
        CorpusEntry("clean_tile", _clean_tile, _setup_clean_exact,
                    None, None),
    )
}

CORPUS: dict[str, CorpusEntry] = {**DEFECTS, **CLEAN}


@dataclass
class CorpusRun:
    """Result of one sanitized corpus launch."""

    entry: CorpusEntry
    findings: list[dict]
    expected_pc: int | None
    counters: dict

    @property
    def detected(self) -> bool:
        """Did the expected finding land at the expected pc?"""
        if self.entry.rule is None:
            return not self.findings
        return any(f["rule"] == self.entry.rule
                   and f["pc"] == self.expected_pc
                   and f["kernel"] == self.entry.name
                   for f in self.findings)


def run_entry(name: str, *, fast_mode: str = "superblock",
              shards: int = 0) -> CorpusRun:
    """Launch one corpus kernel under the sanitizer and collect findings.

    ``shards > 0`` routes the launch through the sharded service
    backend (shard-local shadow state, deterministic merge); otherwise
    the in-process backend runs the requested tier directly.
    """
    entry = CORPUS[name]
    if shards:
        from repro.service.pool import ShardedFunctionalBackend
        backend = ShardedFunctionalBackend(
            shards=shards, fast_mode=fast_mode, sanitize=True,
            inline_below=0)
    else:
        backend = FunctionalBackend(fast_mode=fast_mode, sanitize=True)
    rt = CudaRuntime(backend=backend)
    try:
        rt.load_ptx(entry.build(), f"sanitize_corpus_{name}")
        grid, block, args = entry.setup(rt)
        rt.launch(entry.name, grid, block, args)
        rt.synchronize()
    finally:
        close = getattr(backend, "close", None)
        if close is not None:
            close()
    sanitizer = backend.sanitize
    return CorpusRun(entry=entry,
                     findings=sanitizer.findings_list(),
                     expected_pc=entry.expected_pc(),
                     counters=dict(sanitizer.counters))
