"""Rendering for sanitizer findings: text and JSON reports.

Reports work from plain finding dicts (``{"kernel", "rule", "pc",
"message", "count"}``) so they render equally well from a live
:class:`repro.sanitize.core.Sanitizer`, a merged multi-shard result,
or a service job's JSON payload.  When the kernel objects are
available, each finding is annotated with its *producer chain* — the
short backward dataflow slice from :mod:`repro.analysis.dataflow` that
answers "which instructions computed the bad address?", the same
debugging loop the paper runs by hand with printf and cuda-gdb.
"""

from __future__ import annotations

import json

from repro.analysis.dataflow import producer_chain

#: One-line rule summaries for report headers.
RULE_TITLES = {
    "S601": "out-of-bounds global access",
    "S602": "uninitialized global read",
    "S603": "shared-memory data race",
    "S604": "divergent barrier",
    "S605": "misaligned global access",
}


def _slice_for(finding: dict, kernels: dict) -> list[dict]:
    kernel = kernels.get(finding["kernel"])
    if kernel is None:
        return []
    return producer_chain(kernel, finding["pc"])


def render_text(findings: list[dict], *, kernels: dict | None = None,
                counters: dict | None = None) -> str:
    """Human-readable report, one block per finding."""
    lines: list[str] = []
    if not findings:
        lines.append("sanitizer: no findings")
    else:
        noun = "finding" if len(findings) == 1 else "findings"
        lines.append(f"sanitizer: {len(findings)} {noun}")
    for finding in findings:
        title = RULE_TITLES.get(finding["rule"], "finding")
        count = finding.get("count", 1)
        times = "" if count <= 1 else f"  (x{count})"
        lines.append("")
        lines.append(f"[{finding['rule']}] {title} — kernel "
                     f"{finding['kernel']!r} pc {finding['pc']}{times}")
        lines.append(f"  {finding['message']}")
        for site in _slice_for(finding, kernels or {}):
            indent = "  " * (site["depth"] + 1)
            lines.append(f"{indent}from pc {site['pc']}: {site['text']}")
    if counters:
        lines.append("")
        lines.append(
            "checked {checked_accesses} accesses, skipped "
            "{skipped_proven} statically-proven, {launches} "
            "launches".format(**{
                key: counters.get(key, 0)
                for key in ("checked_accesses", "skipped_proven",
                            "launches")}))
    return "\n".join(lines)


def render_json(findings: list[dict], *, kernels: dict | None = None,
                counters: dict | None = None) -> str:
    """Machine-readable report (stable key order for diffing in CI)."""
    payload = {
        "findings": [
            dict(finding,
                 producers=_slice_for(finding, kernels or {}))
            for finding in findings],
        "counters": dict(counters or {}),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
