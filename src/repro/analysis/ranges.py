"""Value-range analysis: affine address forms and bounds proofs.

The pass tracks, per register, an **affine form** — an integer linear
combination of launch symbols plus a constant::

    %rd4  =  param:out:0  +  4 * %tid.x  +  16

Symbols are per-thread specials (``%tid.*``, ``%laneid``), per-launch
uniforms (``%ctaid.*``, ``%ntid.*``, ``%nctaid.*``), kernel parameter
values (``param:<name>:<offset>``) and static memory bases
(``shared:<name>``, ``global:<name>``).  The transfer functions cover
the address-arithmetic subset (``mov``/``add``/``sub``/``shl`` and
``mul``/``mad`` with one constant factor, widening ``cvt``); anything
else drops the destination to TOP (unknown).  The fixpoint joins by
*keep-if-equal*: a register whose form differs between two paths (or
between loop iterations) is TOP, so the lattice height is two and the
worklist terminates quickly.

Two consumers ride on the result:

* **Static lints** (:mod:`repro.analysis.lints`): definite
  out-of-bounds (M502), definite misalignment (M503), non-pointer
  global loads (D303), and the precision upgrade of the shared-race
  heuristic M501 (thread-injective store proofs).
* **The sanitizer** (:mod:`repro.sanitize`): per-launch, the symbolic
  facts are evaluated against concrete grid/block dims, parameter
  values and the allocation map to build the *proven-safe PC set* —
  memory instructions whose whole address interval provably stays in
  bounds (and aligned, and for loads initialized), which the dynamic
  shadow-state checks then skip.  The facts serialize into the
  megablock plan payload so warm cache loads skip this pass too.

Soundness note: forms are proven over ideal integers; the pass only
claims safety when the evaluated interval is small enough that the
64-bit address arithmetic it abstracts cannot have wrapped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.functional.cfg import build_cfg
from repro.functional.fastpath import _is_special
from repro.ptx import ast
from repro.ptx.ast import Instruction, Kernel

#: Specials usable as interval symbols.  ``%warpid``/``%clock`` are
#: deliberately absent: the former aliases ``%tid`` non-affinely, the
#: latter is not a pure value.
_DIM_SPECIALS = ("%tid.", "%ntid.", "%ctaid.", "%nctaid.")

#: Symbol-name prefixes whose value differs between threads of one CTA.
THREAD_VARYING = ("%tid.", "%laneid")


def is_thread_varying(symbol: str) -> bool:
    """True when *symbol* (possibly a product like ``%ctaid.x*%tid.x``)
    differs between threads of one CTA."""
    return any(part.startswith(THREAD_VARYING)
               for part in symbol.split("*"))

_MASK64 = (1 << 64) - 1


def _signed(payload: int) -> int:
    """Interpret a parser immediate (64-bit two's complement) as int."""
    payload &= _MASK64
    return payload - (1 << 64) if payload >= 1 << 63 else payload


# ----------------------------------------------------------------------
# Affine forms
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Affine:
    """``const + sum(coeff * symbol)`` with integer coefficients."""

    coeffs: tuple[tuple[str, int], ...] = ()
    const: int = 0

    @staticmethod
    def constant(value: int) -> "Affine":
        return Affine((), value)

    @staticmethod
    def symbol(name: str, coeff: int = 1) -> "Affine":
        return Affine(((name, coeff),), 0)

    def add(self, other: "Affine") -> "Affine":
        merged = dict(self.coeffs)
        for name, coeff in other.coeffs:
            merged[name] = merged.get(name, 0) + coeff
        return Affine(_norm(merged), self.const + other.const)

    def negate(self) -> "Affine":
        return self.scale(-1)

    def scale(self, factor: int) -> "Affine":
        if factor == 0:
            return Affine.constant(0)
        return Affine(
            tuple((name, coeff * factor) for name, coeff in self.coeffs),
            self.const * factor)

    def shift(self, delta: int) -> "Affine":
        return Affine(self.coeffs, self.const + delta)

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def coeff(self, name: str) -> int:
        for sym, value in self.coeffs:
            if sym == name:
                return value
        return 0

    def symbols(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.coeffs)

    def render(self) -> str:
        """Human-readable form for finding messages."""
        parts = []
        for name, coeff in self.coeffs:
            parts.append(name if coeff == 1 else f"{coeff}*{name}")
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts).replace("+ -", "- ")


def _norm(coeffs: dict[str, int]) -> tuple[tuple[str, int], ...]:
    return tuple(sorted((n, c) for n, c in coeffs.items() if c != 0))


def _try_mul(a: Affine, b: Affine) -> Affine | None:
    """``a * b`` when representable: one side constant, or the product
    of two atomic symbols (``%ctaid.x * %ntid.x`` becomes the composite
    symbol ``%ctaid.x*%ntid.x``, still launch-evaluable)."""
    if a.is_constant:
        return b.scale(a.const)
    if b.is_constant:
        return a.scale(b.const)
    if (len(a.coeffs) == 1 and len(b.coeffs) == 1
            and a.const == 0 and b.const == 0):
        (sa, ka), (sb, kb) = a.coeffs[0], b.coeffs[0]
        if "*" in sa or "*" in sb:
            return None  # keep products quadratic at most
        if sa.startswith(("param:", "global:", "shared:")) \
                or sb.startswith(("param:", "global:", "shared:")):
            return None  # scaling a pointer is not address arithmetic
        return Affine.symbol("*".join(sorted((sa, sb))), ka * kb)
    return None


# ----------------------------------------------------------------------
# Transfer functions
# ----------------------------------------------------------------------
def _operand_form(op: ast.Operand, env: dict[str, Affine],
                  kernel: Kernel) -> Affine | None:
    if op.kind == ast.REG:
        name = op.name
        if _is_special(name):
            if name.startswith(_DIM_SPECIALS) or name == "%laneid":
                return Affine.symbol(name)
            return None
        return env.get(name)
    if op.kind == ast.IMM:
        if op.imm_float:
            return None
        return Affine.constant(_signed(op.payload))
    if op.kind == ast.SYM:
        return _symbol_base(op.name, None, kernel)
    return None


def _symbol_base(name: str, space: str | None,
                 kernel: Kernel) -> Affine | None:
    """Affine base for a named shared/global variable, if resolvable."""
    if any(v.name == name for v in kernel.shared_vars):
        return Affine.symbol(f"shared:{name}")
    module = kernel.module
    if module is not None and name in module.global_vars:
        return Affine.symbol(f"global:{name}")
    if space == "shared":
        return Affine.symbol(f"shared:{name}")
    if space == "global":
        return Affine.symbol(f"global:{name}")
    return None


def _transfer(inst: Instruction, env: dict[str, Affine],
              kernel: Kernel) -> None:
    """Update *env* in place for one instruction."""
    from repro.analysis.dataflow import defs_of

    written = defs_of(inst)
    if not written:
        return
    form = _def_form(inst, env, kernel)
    if len(written) != 1:
        form = None  # vector destinations: untracked
    (dest,) = written if len(written) == 1 else (None,)
    if dest is None:
        return
    if inst.pred is not None and form is not None:
        # Guarded def: some lanes keep the old value, so the result is
        # only known when old and new forms agree.
        if env.get(dest) != form:
            form = None
    if form is None:
        env.pop(dest, None)
    else:
        env[dest] = form


def _def_form(inst: Instruction, env: dict[str, Affine],
              kernel: Kernel) -> Affine | None:
    op = inst.opcode
    srcs = inst.operands[1:]

    def src(i: int) -> Affine | None:
        if i >= len(srcs):
            return None
        return _operand_form(srcs[i], env, kernel)

    if op == "mov":
        return src(0)
    if op == "add":
        a, b = src(0), src(1)
        return a.add(b) if a is not None and b is not None else None
    if op == "sub":
        a, b = src(0), src(1)
        return a.add(b.negate()) if a is not None and b is not None \
            else None
    if op in ("mul", "mad"):
        if not (inst.has_mod("lo") or inst.has_mod("wide")):
            return None
        a, b = src(0), src(1)
        if a is None or b is None:
            return None
        product = _try_mul(a, b)
        if product is None:
            return None
        if op == "mul":
            return product
        c = src(2)
        return product.add(c) if c is not None else None
    if op == "shl":
        a, b = src(0), src(1)
        if a is None or b is None or not b.is_constant:
            return None
        if not 0 <= b.const < 63:
            return None
        return a.scale(1 << b.const)
    if op == "cvt":
        if len(inst.dtypes) < 2:
            return None
        dst_t, src_t = inst.dtypes[0], inst.dtypes[1]
        if dst_t.is_float or src_t.is_float:
            return None
        if dst_t.bits < src_t.bits:
            return None  # narrowing may truncate
        return src(0)
    if op == "shr":
        return None  # division: outside the affine subset
    if op in ("ld", "ldu") and (inst.space or "") == "param":
        mem = srcs[0] if srcs else None
        if mem is not None and mem.kind == ast.MEM \
                and not mem.is_reg_base:
            return Affine.symbol(f"param:{mem.name}:{mem.offset}")
        return None
    return None


# ----------------------------------------------------------------------
# Per-kernel analysis
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MemFact:
    """The affine address form of one memory instruction."""

    pc: int
    space: str          # "global" | "shared"
    nbytes: int
    is_write: bool
    addr: Affine

    def to_dict(self) -> dict:
        return {
            "pc": self.pc,
            "space": self.space,
            "nbytes": self.nbytes,
            "write": self.is_write,
            "coeffs": {name: coeff for name, coeff in self.addr.coeffs},
            "const": self.addr.const,
        }

    @staticmethod
    def from_dict(data: dict) -> "MemFact":
        return MemFact(
            pc=int(data["pc"]),
            space=str(data["space"]),
            nbytes=int(data["nbytes"]),
            is_write=bool(data["write"]),
            addr=Affine(_norm({str(k): int(v)
                               for k, v in data["coeffs"].items()}),
                        int(data["const"])))


@dataclass
class RangeInfo:
    """Result of :func:`analyze_ranges` for one kernel."""

    facts: dict[int, MemFact] = field(default_factory=dict)
    env_before: dict[int, dict[str, Affine]] = field(default_factory=dict)


def _join(a: dict[str, Affine], b: dict[str, Affine]) -> dict[str, Affine]:
    return {name: form for name, form in a.items()
            if b.get(name) == form}


def _mem_fact(inst: Instruction, env: dict[str, Affine],
              kernel: Kernel) -> MemFact | None:
    if inst.opcode not in ("ld", "st"):
        return None
    space = inst.space or "generic"
    if space not in ("global", "shared"):
        return None
    mem_index = 1 if inst.opcode == "ld" else 0
    if mem_index >= len(inst.operands):
        return None
    mem = inst.operands[mem_index]
    if mem.kind != ast.MEM:
        return None
    if mem.is_reg_base:
        base = env.get(mem.name)
    else:
        base = _symbol_base(mem.name, space, kernel)
    if base is None:
        return None
    data = inst.operands[0 if inst.opcode == "ld" else 1]
    width = len(data.elems) if data.kind == ast.VEC else 1
    nbytes = inst.dtype.bytes * max(1, width)
    return MemFact(pc=inst.index, space=space, nbytes=nbytes,
                   is_write=inst.opcode == "st",
                   addr=base.shift(mem.offset))


def analyze_ranges(kernel: Kernel) -> RangeInfo:
    """Run the affine fixpoint and extract per-PC memory facts."""
    info = RangeInfo()
    if not kernel.body:
        return info
    graph = build_cfg(kernel)
    leaders = sorted(n for n in graph.nodes if n != "exit")
    entry = leaders[0]
    block_in: dict[int, dict[str, Affine]] = {b: {} for b in leaders}
    block_out: dict[int, dict[str, Affine] | None] = \
        {b: None for b in leaders}
    worklist = list(leaders)
    while worklist:
        leader = worklist.pop(0)
        preds = [p for p in graph.predecessors(leader) if p != "exit"]
        env: dict[str, Affine] | None = None
        if leader == entry or not preds:
            env = {}
        for pred in preds:
            out = block_out[pred]
            if out is None:
                continue  # not yet computed: optimistic, revisit later
            env = dict(out) if env is None else _join(env, out)
        if env is None:
            env = {}
        block_in[leader] = dict(env)
        end = graph.nodes[leader]["end"]
        for inst in kernel.body[leader:end]:
            _transfer(inst, env, kernel)
        if env != block_out[leader]:
            block_out[leader] = env
            for succ in graph.successors(leader):
                if succ != "exit" and succ not in worklist:
                    worklist.append(succ)

    for leader in leaders:
        env = dict(block_in[leader])
        end = graph.nodes[leader]["end"]
        for inst in kernel.body[leader:end]:
            info.env_before[inst.index] = dict(env)
            fact = _mem_fact(inst, env, kernel)
            if fact is not None:
                info.facts[fact.pc] = fact
            _transfer(inst, env, kernel)
    return info


def facts_to_payload(info: RangeInfo) -> list[dict]:
    """JSON-serializable fact list for the kernel-plan payload."""
    return [info.facts[pc].to_dict() for pc in sorted(info.facts)]


def facts_from_payload(data: list[dict]) -> dict[int, MemFact]:
    """Inverse of :func:`facts_to_payload`."""
    facts = {}
    for entry in data:
        fact = MemFact.from_dict(entry)
        facts[fact.pc] = fact
    return facts


def kernel_facts(kernel: Kernel) -> dict[int, MemFact]:
    """Memory facts for *kernel*, cached on the kernel object."""
    cached = getattr(kernel, "_range_facts", None)
    if cached is not None and cached[0] == len(kernel.body):
        return cached[1]
    facts = analyze_ranges(kernel).facts
    kernel._range_facts = (len(kernel.body), facts)
    return facts


# ----------------------------------------------------------------------
# Static (launch-independent) proofs for the lints
# ----------------------------------------------------------------------
def pointer_symbols(form: Affine) -> tuple[str, ...]:
    """Symbols that denote a memory base (parameter or static var)."""
    return tuple(name for name in form.symbols()
                 if name.startswith(("param:", "global:", "shared:")))


def static_oob_below(fact: MemFact) -> bool:
    """True when some thread *certainly* accesses below its base.

    Requires a single unit-coefficient pointer symbol, all other
    coefficients non-negative with non-negative symbols (``%tid`` etc.
    start at zero), and a negative constant: the thread at the origin
    then reads ``base + const < base`` in every possible launch.
    """
    pointers = pointer_symbols(fact.addr)
    if fact.space == "global":
        if len(pointers) != 1 or fact.addr.coeff(pointers[0]) != 1:
            return False
    elif pointers:
        return False
    for name, coeff in fact.addr.coeffs:
        if name in pointers:
            continue
        if coeff < 0:
            return False  # could be compensated at larger indices
    return fact.addr.const < 0


def static_misaligned(fact: MemFact) -> bool:
    """True when the access is misaligned in **every** launch.

    All symbol contributions must be multiples of the access size
    (pointer bases qualify: allocations are 256-aligned and shared
    offsets are size-aligned), leaving the constant to decide.
    """
    if fact.nbytes <= 1:
        return False
    for name, coeff in fact.addr.coeffs:
        if name.startswith(("param:", "global:", "shared:")):
            continue  # naturally aligned bases
        if coeff % fact.nbytes:
            return False
    return fact.addr.const % fact.nbytes != 0


def thread_injective(fact: MemFact) -> bool:
    """True when no two threads of a (1-D) CTA share a byte.

    The ``%tid.x`` coefficient must stride by at least the access
    width and no other thread-varying symbol may appear.  The dynamic
    sanitizer additionally checks ``block_dim.y == block_dim.z == 1``
    before trusting this for a concrete launch.
    """
    stride = fact.addr.coeff("%tid.x")
    if abs(stride) < fact.nbytes:
        return False
    for name, coeff in fact.addr.coeffs:
        if name == "%tid.x" or coeff == 0:
            continue
        if is_thread_varying(name):
            return False
    return True


def uniform_address(fact: MemFact) -> bool:
    """True when every thread of the CTA computes the same address."""
    return not any(is_thread_varying(name)
                   for name, coeff in fact.addr.coeffs if coeff)


# ----------------------------------------------------------------------
# Launch-time proof evaluation (the sanitizer's proven-safe set)
# ----------------------------------------------------------------------
#: Proof kinds attached to a pc by :func:`prove_launch`.
BOUNDS = "bounds"
ALIGN = "align"
INIT = "init"
INJECTIVE = "injective"


def _param_value(name: str, launch) -> int | None:
    """Concrete little-endian value of ``param:<name>:<off>``."""
    _, pname, offset = name.split(":")
    decl = next((p for p in launch.kernel.params if p.name == pname),
                None)
    if decl is None or decl.array_len:
        return None
    base = launch.param_offsets.get(pname)
    if base is None:
        return None
    raw = launch.param_mem.read(base + int(offset), decl.dtype.bytes)
    value = int.from_bytes(raw, "little")
    if decl.dtype.kind == "s":
        bits = decl.dtype.bits
        if value >= 1 << (bits - 1):
            value -= 1 << bits
    return value


def _symbol_interval(name: str, launch) -> tuple[int, int] | None:
    """Inclusive value interval of *name* under *launch*."""
    bx, by, bz = launch.block_dim
    gx, gy, gz = launch.grid_dim
    dims = {
        "%tid.x": (0, bx - 1), "%tid.y": (0, by - 1),
        "%tid.z": (0, bz - 1),
        "%ctaid.x": (0, gx - 1), "%ctaid.y": (0, gy - 1),
        "%ctaid.z": (0, gz - 1),
        "%ntid.x": (bx, bx), "%ntid.y": (by, by), "%ntid.z": (bz, bz),
        "%nctaid.x": (gx, gx), "%nctaid.y": (gy, gy),
        "%nctaid.z": (gz, gz),
        "%laneid": (0, min(31, bx * by * bz - 1)),
    }
    if name in dims:
        return dims[name]
    if name.startswith("param:"):
        value = _param_value(name, launch)
        return None if value is None else (value, value)
    if name.startswith("shared:"):
        offset = launch.shared_offsets.get(name.split(":", 1)[1])
        return None if offset is None else (offset, offset)
    if name.startswith("global:"):
        entry = launch.module_symbols.get(name.split(":", 1)[1])
        if entry is None:
            return None
        _space, addr = entry
        return (addr, addr)
    if "*" in name:
        left, right = name.split("*", 1)
        a = _symbol_interval(left, launch)
        b = _symbol_interval(right, launch)
        if a is None or b is None:
            return None
        corners = [x * y for x in a for y in b]
        return min(corners), max(corners)
    return None


def eval_interval(form: Affine, launch) -> tuple[int, int] | None:
    """Inclusive ``[lo, hi]`` of *form* under *launch*, or None."""
    lo = hi = form.const
    for name, coeff in form.coeffs:
        interval = _symbol_interval(name, launch)
        if interval is None:
            return None
        a, b = interval
        lo += coeff * (a if coeff > 0 else b)
        hi += coeff * (b if coeff > 0 else a)
    return lo, hi


def _aligned(fact: MemFact, lo: int) -> bool:
    if fact.nbytes <= 1:
        return True
    for name, coeff in fact.addr.coeffs:
        if name.startswith(("param:", "global:", "shared:")):
            continue  # the base's residue is already inside *lo*
        if coeff % fact.nbytes:
            return False
    return lo % fact.nbytes == 0


def prove_launch(facts: dict[int, "MemFact"], launch,
                 global_mem) -> dict[int, frozenset[str]]:
    """Evaluate symbolic facts against one concrete launch.

    Returns pc → proof set over {BOUNDS, ALIGN, INIT, INJECTIVE}.
    BOUNDS means the whole address interval stays inside one live
    allocation (global) or the kernel's shared segment; INIT (loads)
    additionally means every byte of that interval is initialized *at
    launch time* (the shadow must be consulted — monotone, so a proof
    now holds for the whole launch); INJECTIVE (shared) means no two
    threads of a CTA can touch the same byte between barriers.
    """
    bx, by, bz = launch.block_dim
    one_dim_block = by == 1 and bz == 1
    shadow = getattr(global_mem, "shadow", None)
    proofs: dict[int, frozenset[str]] = {}
    for pc, fact in facts.items():
        proved: set[str] = set()
        interval = eval_interval(fact.addr, launch)
        if interval is not None:
            lo, hi = interval
            if fact.space == "shared":
                if 0 <= lo and hi + fact.nbytes <= launch.shared_bytes:
                    proved.add(BOUNDS)
            else:
                span = global_mem.allocation_containing(lo)
                if span is not None:
                    base, size = span
                    if hi + fact.nbytes <= base + size:
                        proved.add(BOUNDS)
                        if (not fact.is_write and shadow is not None
                                and shadow.range_initialized(
                                    lo, hi + fact.nbytes - lo)):
                            proved.add(INIT)
            if _aligned(fact, lo):
                proved.add(ALIGN)
        if (fact.space == "shared" and one_dim_block
                and thread_injective(fact)):
            proved.add(INJECTIVE)
        if proved:
            proofs[pc] = frozenset(proved)
    return proofs
