"""``repro-lint``: the command-line front end of :mod:`repro.analysis`.

Lints standalone ``.ptx`` files and/or every PTX translation unit
embedded in the cuDNN/cuBLAS fat binaries, under either semantics
profile (``--quirks fixed`` is the repaired simulator, ``--quirks
stock`` replays the paper's buggy GPGPU-Sim so quirk-dependence
diagnostics fire).  Findings print as text or JSON.

A committed baseline (``results/lint_baseline.json``) makes the exit
status regression-oriented: known findings pass, *new* ones fail — the
same contract as the CI job.

Exit codes: 0 clean (or only baselined findings), 1 new findings,
2 usage / input errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis import analyze_module, sort_findings
from repro.analysis.findings import Finding
from repro.errors import ReproError
from repro.quirks import FIXED, STOCK_GPGPUSIM

_QUIRK_PROFILES = {"fixed": FIXED, "stock": STOCK_GPGPUSIM}


def _iter_embedded():
    """(file_id, ptx_text) for every translation unit of the app binary."""
    from repro.cudnn.library import build_application_binary
    seen: set[str] = set()
    for embedded in build_application_binary().embedded:
        # scale_array is deliberately defined in two files; both lint.
        key = embedded.file_id
        if key in seen:
            continue
        seen.add(key)
        yield embedded.file_id, embedded.text


def _load_baseline(path: Path) -> set[str]:
    data = json.loads(path.read_text())
    return {entry["key"] for entry in data.get("findings", [])}


def _baseline_payload(findings: list[Finding], quirks: str) -> dict:
    return {
        "quirks": quirks,
        "findings": [
            {"key": f.key(), **f.to_dict()} for f in findings
        ],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static analysis / lint for PTX kernels "
                    "(typed-instruction verifier, dataflow, divergence "
                    "and shared-memory lints).")
    parser.add_argument("paths", nargs="*", metavar="FILE.ptx",
                        help="PTX files to lint")
    parser.add_argument("--all-embedded", action="store_true",
                        help="lint every PTX translation unit embedded "
                             "in the cuDNN/cuBLAS binaries")
    parser.add_argument("--quirks", choices=sorted(_QUIRK_PROFILES),
                        default="fixed",
                        help="semantics profile for quirk-dependence "
                             "diagnostics (default: fixed)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="known-findings file: only findings absent "
                             "from it fail the run")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write the current findings to --baseline "
                             "instead of comparing against it")
    args = parser.parse_args(argv)

    if not args.paths and not args.all_embedded:
        parser.error("nothing to lint: give FILE.ptx paths and/or "
                     "--all-embedded")
    if args.write_baseline and not args.baseline:
        parser.error("--write-baseline requires --baseline PATH")

    quirks = _QUIRK_PROFILES[args.quirks]

    sources: list[tuple[str, str]] = []
    for path in args.paths:
        try:
            sources.append((path, Path(path).read_text()))
        except OSError as error:
            print(f"repro-lint: cannot read {path}: {error}",
                  file=sys.stderr)
            return 2
    if args.all_embedded:
        sources.extend(_iter_embedded())

    from repro.ptx.parser import parse_module
    findings: list[Finding] = []
    for file_id, text in sources:
        try:
            module = parse_module(text, file_id)
        except ReproError as error:
            print(f"repro-lint: {file_id}: parse failed: {error}",
                  file=sys.stderr)
            return 2
        findings.extend(analyze_module(module, quirks=quirks))
    findings = sort_findings(findings)

    if args.write_baseline:
        payload = _baseline_payload(findings, args.quirks)
        Path(args.baseline).write_text(
            json.dumps(payload, indent=2) + "\n")
        print(f"wrote {len(findings)} finding(s) to {args.baseline}")
        return 0

    known: set[str] = set()
    if args.baseline:
        try:
            known = _load_baseline(Path(args.baseline))
        except (OSError, ValueError, KeyError) as error:
            print(f"repro-lint: cannot load baseline "
                  f"{args.baseline}: {error}", file=sys.stderr)
            return 2
    new = [f for f in findings if f.key() not in known]

    if args.format == "json":
        print(json.dumps({
            "quirks": args.quirks,
            "files": len(sources),
            "findings": [
                {"key": f.key(), "new": f.key() not in known,
                 **f.to_dict()}
                for f in findings
            ],
        }, indent=2))
    else:
        if not findings:
            print("clean: no findings")
        else:
            for finding in findings:
                marker = "" if finding.key() in known else " [new]"
                print(finding.render() + marker)
            baselined = len(findings) - len(new)
            summary = f"{len(findings)} finding(s), {len(new)} new"
            if baselined:
                summary += f", {baselined} baselined"
            print(summary)
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
