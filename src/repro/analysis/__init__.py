"""Static analysis over parsed PTX: dataflow engine, verifier, lints.

Public surface:

* :func:`analyze_kernel` — verifier + lint passes for one kernel.
* :func:`analyze_module` — every kernel of a parsed module.
* :func:`verify_launch` — the ``FunctionalEngine(verify=True)`` gate:
  raises :class:`repro.errors.VerificationError` when the verifier (or
  an enabled-quirk dependence check) reports an error-severity finding.
* :mod:`repro.analysis.dataflow` — the reusable analyses (reaching
  definitions, liveness, def-use chains, variance, producer slices).
"""

from __future__ import annotations

from repro.analysis.findings import (
    ERROR, Finding, INFO, LintReport, WARNING, sort_findings)
from repro.analysis.lints import LINT_PASSES, run_lints
from repro.analysis.ranges import (
    Affine, MemFact, RangeInfo, analyze_ranges, facts_from_payload,
    facts_to_payload, kernel_facts, prove_launch, thread_injective)
from repro.analysis.vectorize import (
    ANALYSIS_VERSION, VectorReport, classify_kernel, grid_variance)
from repro.analysis.verifier import QUIRK_RULES, verify_kernel
from repro.errors import VerificationError
from repro.ptx.ast import Kernel, PTXModule
from repro.quirks import LegacyQuirks

__all__ = [
    "ANALYSIS_VERSION", "ERROR", "WARNING", "INFO", "Affine",
    "Finding", "LintReport", "MemFact", "QUIRK_RULES", "LINT_PASSES",
    "RangeInfo", "VectorReport", "analyze_kernel", "analyze_module",
    "analyze_ranges", "classify_kernel", "facts_from_payload",
    "facts_to_payload", "grid_variance", "kernel_facts",
    "prove_launch", "run_lints", "sort_findings", "thread_injective",
    "verify_kernel", "verify_launch",
]


def analyze_kernel(kernel: Kernel, *,
                   quirks: LegacyQuirks | None = None,
                   file_id: str = "",
                   passes: list[str] | None = None) -> list[Finding]:
    """Verifier + lint passes for one kernel, sorted for stable output."""
    findings = verify_kernel(kernel, quirks=quirks, file_id=file_id)
    findings.extend(run_lints(kernel, file_id=file_id, passes=passes))
    return sort_findings(findings)


def analyze_module(module: PTXModule, *,
                   quirks: LegacyQuirks | None = None,
                   passes: list[str] | None = None) -> list[Finding]:
    """Analyse every kernel in a parsed PTX module."""
    findings: list[Finding] = []
    for kernel in module.kernels.values():
        findings.extend(analyze_kernel(
            kernel, quirks=quirks, file_id=module.file_id, passes=passes))
    return sort_findings(findings)


def verify_launch(kernel: Kernel,
                  quirks: LegacyQuirks | None = None) -> list[Finding]:
    """Pre-execution gate: verify *kernel* under *quirks*.

    Raises :class:`VerificationError` carrying the error findings if the
    typed-instruction verifier rejects the kernel or the kernel depends
    on an active quirk; returns all (error + warning) findings
    otherwise so callers can log them.
    """
    findings = verify_kernel(kernel, quirks=quirks)
    errors = [f for f in findings if f.severity == ERROR]
    if errors:
        summary = "; ".join(
            f"[{f.rule}] pc {f.pc}: {f.message}" for f in errors[:4])
        if len(errors) > 4:
            summary += f" (+{len(errors) - 4} more)"
        raise VerificationError(
            f"kernel {kernel.name!r} failed static verification: "
            f"{summary}", findings=errors)
    return findings
