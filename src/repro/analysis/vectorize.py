"""Vectorizability classification for the megablock execution tier.

The intra-warp :func:`repro.analysis.dataflow.variance` taint answers
"can this branch diverge *within a warp*?".  The megablock tier
(:mod:`repro.functional.megablock`) executes every thread of a grid
chunk in one lockstep vector, so it needs the stronger *grid* question:
"can this value differ between **any** two threads of the grid?".  A
branch whose predicate is grid-uniform moves the whole vector frame as
one — no mask arithmetic, no frame splits — which is the fast path that
keeps loop-heavy kernels (GEMM tiles, FFT stages) at array speed.

The grid analysis is the same forward taint with a wider seed set:
``%ctaid`` and ``%warpid`` are uniform within a warp but obviously not
across the grid, so they join ``%tid``/``%laneid``/``%clock`` as
variance sources.  ``%ntid``/``%nctaid`` remain uniform everywhere.

:data:`ANALYSIS_VERSION` stamps both this classification and the
compiled-plan payloads in the disk kernel cache
(:mod:`repro.functional.kernelcache`); bump it whenever the taint rules
or the classification shape change so stale cache entries are discarded
rather than trusted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.dataflow import (
    Solution, _Variance, _is_special, defs_of, solve, uses_of)
from repro.ptx.ast import Kernel

#: Version of the vectorizability facts (cache-key component).
#: 2: megablock plans additionally carry affine memory facts from
#: :mod:`repro.analysis.ranges`.
ANALYSIS_VERSION = 2

#: Specials that may differ between two threads *of the grid*.
_GRID_VARIANT_SPECIALS = ("%tid", "%laneid", "%clock", "%ctaid", "%warpid")


class _GridVariance(_Variance):
    """Forward taint seeded with every non-grid-uniform special."""

    def transfer(self, inst, facts):
        # The base class consults the narrower intra-warp special list;
        # widen by tainting any def that reads a grid-variant special.
        facts = super().transfer(inst, facts)
        written = defs_of(inst)
        if not written or written <= facts:
            return facts
        for name in uses_of(inst):
            if _is_special(name) and name.startswith(_GRID_VARIANT_SPECIALS):
                return facts | written
        return facts


def grid_variance(kernel: Kernel) -> Solution:
    """Registers that may differ between any two grid threads."""
    return solve(kernel, _GridVariance())


@dataclass
class VectorReport:
    """Branch-level vectorizability facts for one kernel.

    ``uniform_branches`` — predicated ``bra`` pcs whose guard is
    grid-uniform: every thread takes the same side, so the vector tier
    can move a whole frame without computing masks.
    ``divergent_branches`` — the rest: mask splits with IPDOM
    reconvergence frames.
    ``variant_after`` — per-pc grid-variant register sets (the raw
    facts, kept for lints and debugging).
    ``barrier_pcs`` — every ``bar`` pc, for the barrier admission rule.
    """

    kernel: str
    uniform_branches: frozenset[int] = frozenset()
    divergent_branches: frozenset[int] = frozenset()
    variant_after: dict[int, frozenset] = field(default_factory=dict)
    barrier_pcs: frozenset[int] = frozenset()

    @property
    def has_divergence(self) -> bool:
        return bool(self.divergent_branches)

    def barrier_divergence(self) -> dict[int, bool]:
        """Per-barrier divergence fact feeding megablock plan admission.

        ``False`` proves the barrier can only ever be reached by a full
        frame (no branch of the kernel diverges across the grid), so
        the vector machine may skip its runtime containment proof;
        ``True`` keeps the runtime check (and the park/bail protocol)
        armed.  Currently kernel-granular — a per-barrier reachability
        refinement can tighten this without touching the consumer.
        """
        return {pc: self.has_divergence for pc in self.barrier_pcs}


def classify_kernel(kernel: Kernel) -> VectorReport:
    """Split the kernel's conditional branches by grid uniformity."""
    solution = grid_variance(kernel)
    uniform: set[int] = set()
    divergent: set[int] = set()
    barriers: set[int] = set()
    for inst in kernel.body:
        if inst.opcode == "bar":
            barriers.add(inst.index)
            continue
        if inst.opcode != "bra" or inst.pred is None:
            continue
        before = solution.before.get(inst.index, frozenset())
        if inst.pred in before:
            divergent.add(inst.index)
        else:
            uniform.add(inst.index)
    return VectorReport(
        kernel=kernel.name,
        uniform_branches=frozenset(uniform),
        divergent_branches=frozenset(divergent),
        variant_after=dict(solution.after),
        barrier_pcs=frozenset(barriers))
