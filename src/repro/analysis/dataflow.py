"""Generic dataflow analysis over a kernel's basic-block CFG.

The engine reuses :func:`repro.functional.cfg.build_cfg` (the same graph
the SIMT reconvergence machinery is built on) and runs a classic
worklist fixpoint at basic-block granularity, then expands the solution
to per-instruction ``in``/``out`` fact sets.  Facts are frozensets; the
meet is union, so every problem expressed here is a may-analysis.

Concrete problems shipped on top of the engine:

* :func:`reaching_definitions` — with a synthetic :data:`UNINIT` def for
  every register at kernel entry, so uninitialised reads are visible.
* :func:`liveness` — backward; the variant used for superblock
  writeback pruning treats sub-64-bit writes as read-modify-write of
  the destination (the register file stores 64-bit payload unions, so a
  narrow write composes with the old upper bits — skipping it is only
  sound when nothing later reads *any* bits of the register).
* :func:`def_use_chains` — both directions (def→uses, use→defs),
  derived from reaching definitions.
* :func:`variance` — forward taint from per-lane special registers
  (``%tid``/``%laneid``), the input to the divergence lints.
* :func:`producer_chain` — backward slice over the def→use graph; the
  debugger attaches it to a mis-executing instruction's report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.functional.cfg import build_cfg
from repro.functional.fastpath import _is_special
from repro.ptx import ast
from repro.ptx.ast import Instruction, Kernel

#: Synthetic definition site meaning "never written on some path".
UNINIT = -1

#: Opcodes whose first operand is *not* a destination register.
NO_DEST = frozenset(
    ["st", "bra", "bar", "exit", "ret", "membar", "fence", "red"])

#: Special registers that differ between lanes of one warp.  ``%ctaid``
#: ``%nctaid``/``%ntid``/``%warpid`` are uniform across a warp and so
#: cannot cause intra-warp divergence.
_VARIANT_SPECIALS = ("%tid", "%laneid", "%clock")


# ----------------------------------------------------------------------
# Per-instruction def/use extraction
# ----------------------------------------------------------------------
def _collect_reads(op: ast.Operand, out: set[str]) -> None:
    if op.kind == ast.REG:
        out.add(op.name)
    elif op.kind == ast.MEM:
        if op.is_reg_base:
            out.add(op.name)
        for elem in op.elems:        # tex coordinate vector
            _collect_reads(elem, out)
    elif op.kind == ast.VEC:
        for elem in op.elems:
            _collect_reads(elem, out)


def defs_of(inst: Instruction) -> frozenset[str]:
    """Register names written by *inst* (empty for stores/control flow)."""
    if inst.opcode in NO_DEST or not inst.operands:
        return frozenset()
    dst = inst.operands[0]
    if dst.kind == ast.REG and not _is_special(dst.name):
        return frozenset((dst.name,))
    if dst.kind == ast.VEC:
        return frozenset(e.name for e in dst.elems
                         if e.kind == ast.REG and not _is_special(e.name))
    return frozenset()


def uses_of(inst: Instruction) -> frozenset[str]:
    """Register names read by *inst*, including the guard predicate and
    special registers (callers filter specials where irrelevant)."""
    reads: set[str] = set()
    if inst.pred is not None:
        reads.add(inst.pred)
    start = 0 if inst.opcode in NO_DEST else 1
    for op in inst.operands[start:]:
        _collect_reads(op, reads)
    if inst.opcode not in NO_DEST and inst.operands:
        # The destination of a memory-operand write (never the case for
        # the supported subset) or a VEC destination address base.
        dst = inst.operands[0]
        if dst.kind == ast.MEM and dst.is_reg_base:
            reads.add(dst.name)
    return frozenset(reads)


def write_bits(inst: Instruction) -> int:
    """Effective payload width of the destination write.

    The register file stores 64-bit unions; ``ld``/``setp``/``tex``
    destinations are written whole-payload (raw), everything else
    composes ``dtype.bits`` low bits with the previous upper bits.
    """
    op = inst.opcode
    if op in ("ld", "ldu", "setp", "set", "tex"):
        return 64
    if op == "cvt":
        return inst.dtypes[0].bits
    if op in ("mul", "mad") and inst.has_mod("wide"):
        return inst.dtype.bits * 2
    if op in ("popc", "clz"):
        return 32
    if inst.dtypes and inst.dtype.kind == "p":
        return 64
    return inst.dtype.bits if inst.dtypes else 64


def is_killing(inst: Instruction) -> bool:
    """True when the def certainly overwrites (not guarded by a pred)."""
    return inst.pred is None


# ----------------------------------------------------------------------
# Generic worklist solver
# ----------------------------------------------------------------------
@dataclass
class DataflowProblem:
    """A may-analysis: union meet, per-instruction transfer."""

    direction: str = "forward"          # "forward" | "backward"

    def boundary(self, kernel: Kernel) -> frozenset:
        """Fact set at kernel entry (forward) or exit (backward)."""
        del kernel
        return frozenset()

    def transfer(self, inst: Instruction, facts: frozenset) -> frozenset:
        raise NotImplementedError


@dataclass
class Solution:
    """Per-instruction fact sets: ``before[pc]`` / ``after[pc]``."""

    before: dict[int, frozenset] = field(default_factory=dict)
    after: dict[int, frozenset] = field(default_factory=dict)


def solve(kernel: Kernel, problem: DataflowProblem) -> Solution:
    """Run *problem* to fixpoint and expand to instruction granularity."""
    solution = Solution()
    if not kernel.body:
        return solution
    graph = build_cfg(kernel)
    leaders = sorted(n for n in graph.nodes if n != "exit")
    forward = problem.direction == "forward"
    boundary = problem.boundary(kernel)

    def block_insts(leader: int) -> list[Instruction]:
        end = graph.nodes[leader]["end"]
        insts = kernel.body[leader:end]
        return insts if forward else list(reversed(insts))

    def edges_in(leader: int):
        """Blocks whose out-facts feed this block's in-facts."""
        nodes = (graph.predecessors(leader) if forward
                 else graph.successors(leader))
        return [n for n in nodes if n != "exit"]

    block_in: dict[int, frozenset] = {b: frozenset() for b in leaders}
    block_out: dict[int, frozenset] = {b: frozenset() for b in leaders}
    entry = leaders[0]
    worklist = list(leaders if forward else reversed(leaders))
    while worklist:
        leader = worklist.pop(0)
        feeds = edges_in(leader)
        facts: frozenset = frozenset()
        if forward:
            # Blocks with no predecessors (the entry block, plus any
            # unreachable block) start from the boundary facts.
            if leader == entry or not feeds:
                facts = boundary
        else:
            nodes = list(graph.successors(leader))
            if "exit" in nodes or not nodes:
                facts = boundary
        for other in feeds:
            facts = facts | block_out[other]
        block_in[leader] = facts
        for inst in block_insts(leader):
            facts = problem.transfer(inst, facts)
        if facts != block_out[leader]:
            block_out[leader] = facts
            targets = (graph.successors(leader) if forward
                       else graph.predecessors(leader))
            for nxt in targets:
                if nxt != "exit" and nxt not in worklist:
                    worklist.append(nxt)

    # Expand the block solution to per-instruction before/after sets.
    for leader in leaders:
        facts = block_in[leader]
        for inst in block_insts(leader):
            if forward:
                solution.before[inst.index] = facts
                facts = problem.transfer(inst, facts)
                solution.after[inst.index] = facts
            else:
                solution.after[inst.index] = facts
                facts = problem.transfer(inst, facts)
                solution.before[inst.index] = facts
    return solution


# ----------------------------------------------------------------------
# Reaching definitions (with UNINIT entry defs)
# ----------------------------------------------------------------------
def _register_universe(kernel: Kernel) -> frozenset[str]:
    names: set[str] = set(kernel.reg_decls)
    for inst in kernel.body:
        names.update(defs_of(inst))
        names.update(n for n in uses_of(inst) if not _is_special(n))
    return frozenset(names)


class _ReachingDefs(DataflowProblem):
    """Facts are ``(register, def_pc)`` pairs; ``def_pc == UNINIT`` marks
    the synthetic kernel-entry definition."""

    def __init__(self) -> None:
        super().__init__(direction="forward")

    def boundary(self, kernel: Kernel) -> frozenset:
        return frozenset((name, UNINIT)
                         for name in _register_universe(kernel))

    def transfer(self, inst: Instruction, facts: frozenset) -> frozenset:
        written = defs_of(inst)
        if not written:
            return facts
        if is_killing(inst):
            facts = frozenset(f for f in facts if f[0] not in written)
        return facts | frozenset((name, inst.index) for name in written)


def reaching_definitions(kernel: Kernel) -> Solution:
    """(register, def_pc) pairs reaching each instruction."""
    return solve(kernel, _ReachingDefs())


# ----------------------------------------------------------------------
# Liveness
# ----------------------------------------------------------------------
class _Liveness(DataflowProblem):
    """Backward live-register analysis.

    ``rmw_dst_is_use`` makes a sub-64-bit write also *read* its
    destination (payload-union compose); required for sound writeback
    pruning, pessimistic for dead-store reporting.
    """

    def __init__(self, *, rmw_dst_is_use: bool) -> None:
        super().__init__(direction="backward")
        self.rmw_dst_is_use = rmw_dst_is_use

    def transfer(self, inst: Instruction, facts: frozenset) -> frozenset:
        written = defs_of(inst)
        if written and is_killing(inst) and (
                not self.rmw_dst_is_use or write_bits(inst) >= 64):
            facts = facts - written
        reads = frozenset(n for n in uses_of(inst) if not _is_special(n))
        if written and self.rmw_dst_is_use and write_bits(inst) < 64:
            reads = reads | written
        return facts | reads


def liveness(kernel: Kernel, *, rmw_dst_is_use: bool = True) -> Solution:
    """Live registers before/after each instruction."""
    return solve(kernel, _Liveness(rmw_dst_is_use=rmw_dst_is_use))


def block_live_out(kernel: Kernel,
                   *, rmw_dst_is_use: bool = True) -> dict[int, frozenset]:
    """Map block-leader pc → registers live when the block exits.

    This is what the superblock codegen consumes: a fused block may skip
    the dict writeback of any register not in its ``live_out`` set.
    """
    live = liveness(kernel, rmw_dst_is_use=rmw_dst_is_use)
    graph = build_cfg(kernel)
    result: dict[int, frozenset] = {}
    for node in graph.nodes:
        if node == "exit":
            continue
        end = graph.nodes[node]["end"]
        if end - 1 in live.after:
            result[node] = live.after[end - 1]
        else:
            result[node] = frozenset()
    return result


# ----------------------------------------------------------------------
# Def-use chains
# ----------------------------------------------------------------------
@dataclass
class DefUseChains:
    """Bidirectional def/use maps derived from reaching definitions.

    ``uses_of_def[(reg, def_pc)]`` — pcs that may read that definition;
    ``defs_of_use[(reg, use_pc)]`` — def pcs (or UNINIT) that may feed
    the read.
    """

    uses_of_def: dict[tuple[str, int], frozenset[int]]
    defs_of_use: dict[tuple[str, int], frozenset[int]]


def def_use_chains(kernel: Kernel) -> DefUseChains:
    reach = reaching_definitions(kernel)
    uses_of_def: dict[tuple[str, int], set[int]] = {}
    defs_of_use: dict[tuple[str, int], set[int]] = {}
    for inst in kernel.body:
        incoming = reach.before.get(inst.index, frozenset())
        for name in uses_of(inst):
            if _is_special(name):
                continue
            sources = {pc for reg, pc in incoming if reg == name}
            defs_of_use[(name, inst.index)] = sources
            for pc in sources:
                uses_of_def.setdefault((name, pc), set()).add(inst.index)
    return DefUseChains(
        uses_of_def={k: frozenset(v) for k, v in uses_of_def.items()},
        defs_of_use={k: frozenset(v) for k, v in defs_of_use.items()})


def producer_chain(kernel: Kernel, pc: int,
                   *, max_depth: int = 4,
                   max_sites: int = 12) -> list[dict]:
    """Backward slice: the static producers of *pc*'s source registers.

    Returns a list of ``{"pc", "depth", "register", "text"}`` entries,
    nearest producers first — the debugger renders this under a bad
    instruction so the physical bisection can jump straight to the
    upstream computation.
    """
    if pc < 0 or pc >= len(kernel.body):
        return []
    chains = def_use_chains(kernel)
    sliced: list[dict] = []
    seen: set[tuple[str, int]] = set()
    frontier: list[tuple[str, int, int]] = []
    for name in sorted(uses_of(kernel.body[pc])):
        if not _is_special(name):
            frontier.append((name, pc, 1))
    while frontier and len(sliced) < max_sites:
        name, use_pc, depth = frontier.pop(0)
        for def_pc in sorted(chains.defs_of_use.get((name, use_pc),
                                                    frozenset())):
            if def_pc == UNINIT or (name, def_pc) in seen:
                continue
            seen.add((name, def_pc))
            producer = kernel.body[def_pc]
            sliced.append({
                "pc": def_pc,
                "depth": depth,
                "register": name,
                "text": producer.text or str(producer),
            })
            if depth < max_depth:
                for src in sorted(uses_of(producer)):
                    if not _is_special(src):
                        frontier.append((src, def_pc, depth + 1))
            if len(sliced) >= max_sites:
                break
    sliced.sort(key=lambda entry: (entry["depth"], entry["pc"]))
    return sliced


# ----------------------------------------------------------------------
# Thread-variance (divergence taint)
# ----------------------------------------------------------------------
def _reads_variant_special(inst: Instruction) -> bool:
    return any(name.startswith(_VARIANT_SPECIALS)
               for name in uses_of(inst) if _is_special(name))


class _Variance(DataflowProblem):
    """Forward taint: which registers may differ between lanes.

    Seeds: per-lane specials (``%tid``/``%laneid``), data loaded from
    mutable memory spaces, ``atom``/``tex`` results.  ``ld.param`` and
    ``ld.const`` stay uniform unless their *address* is variant.
    A def guarded by a variant predicate is itself variant (some lanes
    keep the old value).
    """

    _UNIFORM_SPACES = ("param", "const")

    def __init__(self) -> None:
        super().__init__(direction="forward")

    def transfer(self, inst: Instruction, facts: frozenset) -> frozenset:
        written = defs_of(inst)
        if not written:
            return facts
        reads = frozenset(n for n in uses_of(inst) if not _is_special(n))
        variant = bool(reads & facts) or _reads_variant_special(inst)
        if inst.pred is not None and inst.pred in facts:
            variant = True
        if inst.opcode in ("atom", "tex"):
            variant = True
        elif inst.opcode in ("ld", "ldu"):
            if (inst.space or "generic") not in self._UNIFORM_SPACES:
                variant = True
        if variant:
            return facts | written
        if is_killing(inst):
            return facts - written
        return facts


def variance(kernel: Kernel) -> Solution:
    """Thread-variant register sets before/after each instruction."""
    return solve(kernel, _Variance())
