"""Dataflow/control-flow lint passes over a prepared kernel.

Each pass has signature ``pass_fn(ctx) -> list[Finding]`` where *ctx*
is a :class:`LintContext` carrying the kernel plus lazily computed
dataflow solutions, so passes share one CFG/liveness/variance run.

Passes::

    D301  register may be read before initialisation
    D302  dead store (definition with no reachable use)
    D303  global load from a non-pointer (fabricated) address
    C401  bar.sync reachable under thread-divergent control flow
          before the branch's IPDOM reconvergence point
    M501  static shared-memory race check (range-analysis backed:
          thread-injective stores are proven benign, provable
          overlaps are errors, the rest stays heuristic)
    M502  definite out-of-bounds access (negative offset from base)
    M503  definite misalignment (access size never divides address)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis import dataflow, ranges
from repro.analysis.dataflow import UNINIT, defs_of, uses_of
from repro.analysis.findings import ERROR, Finding, WARNING
from repro.functional.cfg import build_cfg, prepare_kernel
from repro.functional.fastpath import _is_special
from repro.functional.simt import NO_RECONVERGE
from repro.ptx.ast import Instruction, Kernel


@dataclass
class LintContext:
    """Shared analysis state for one kernel."""

    kernel: Kernel
    file_id: str = ""
    _graph: object = None
    _reach: dataflow.Solution | None = None
    _live: dataflow.Solution | None = None
    _variance: dataflow.Solution | None = None
    _chains: dataflow.DefUseChains | None = None
    _ranges: ranges.RangeInfo | None = None

    @property
    def graph(self):
        if self._graph is None:
            self._graph = build_cfg(self.kernel)
        return self._graph

    @property
    def reach(self) -> dataflow.Solution:
        if self._reach is None:
            self._reach = dataflow.reaching_definitions(self.kernel)
        return self._reach

    @property
    def variance(self) -> dataflow.Solution:
        if self._variance is None:
            self._variance = dataflow.variance(self.kernel)
        return self._variance

    @property
    def chains(self) -> dataflow.DefUseChains:
        if self._chains is None:
            self._chains = dataflow.def_use_chains(self.kernel)
        return self._chains

    @property
    def ranges(self) -> ranges.RangeInfo:
        if self._ranges is None:
            self._ranges = ranges.analyze_ranges(self.kernel)
        return self._ranges

    def finding(self, rule: str, severity: str, inst: Instruction,
                message: str) -> Finding:
        return Finding(rule=rule, severity=severity,
                       kernel=self.kernel.name, pc=inst.index,
                       message=message, file_id=self.file_id,
                       text=inst.text or str(inst))


# ----------------------------------------------------------------------
# D301: uninitialised register read
# ----------------------------------------------------------------------
def lint_uninitialized_reads(ctx: LintContext) -> list[Finding]:
    findings: list[Finding] = []
    for inst in ctx.kernel.body:
        incoming = ctx.reach.before.get(inst.index, frozenset())
        for name in sorted(uses_of(inst)):
            if _is_special(name):
                continue
            sources = {pc for reg, pc in incoming if reg == name}
            if not sources or UNINIT not in sources:
                continue
            if sources == {UNINIT}:
                findings.append(ctx.finding(
                    "D301", ERROR, inst,
                    f"{name} is read before any initialisation"))
            else:
                findings.append(ctx.finding(
                    "D301", WARNING, inst,
                    f"{name} may be read uninitialised on some path"))
    return findings


# ----------------------------------------------------------------------
# D302: dead store
# ----------------------------------------------------------------------
def lint_dead_stores(ctx: LintContext) -> list[Finding]:
    findings: list[Finding] = []
    for inst in ctx.kernel.body:
        written = sorted(defs_of(inst))
        if not written:
            continue
        dead = [n for n in written
                if not ctx.chains.uses_of_def.get((n, inst.index))]
        if len(dead) != len(written):
            # A vector destination with at least one live element is
            # idiomatic (ld.v2 reading only .x, tex.v4 using one channel).
            continue
        if inst.opcode == "atom":
            message = ("atomic result is never read; red.* expresses "
                       "the reduction without a destination register")
        else:
            message = f"value written to {', '.join(dead)} is never read"
        findings.append(ctx.finding("D302", WARNING, inst, message))
    return findings


# ----------------------------------------------------------------------
# C401: barrier under divergent control flow
# ----------------------------------------------------------------------
def _bars_reachable(ctx: LintContext, leader, stop_block) -> set[int]:
    """pcs of ``bar`` instructions reachable from block *leader* by a
    block-level DFS that stops at *stop_block* (the reconvergence
    block) and at kernel exit."""
    graph = ctx.graph
    kernel = ctx.kernel
    bars: set[int] = set()
    seen: set = set()
    stack = [leader]
    while stack:
        block = stack.pop()
        if block in seen or block == "exit" or block == stop_block:
            continue
        seen.add(block)
        end = graph.nodes[block]["end"]
        for inst in kernel.body[block:end]:
            if inst.opcode == "bar":
                bars.add(inst.index)
        stack.extend(graph.successors(block))
    return bars


def lint_divergent_barriers(ctx: LintContext) -> list[Finding]:
    kernel = ctx.kernel
    prepare_kernel(kernel)
    graph = ctx.graph
    block_of = graph.graph.get("block_of", {})
    findings: list[Finding] = []
    flagged: set[int] = set()
    for inst in kernel.body:
        if inst.opcode != "bra" or inst.pred is None:
            continue
        variant = ctx.variance.before.get(inst.index, frozenset())
        if inst.pred not in variant:
            continue                    # warp-uniform branch: no divergence
        rpc = kernel.reconvergence.get(inst.index, NO_RECONVERGE)
        stop = block_of.get(rpc) if rpc != NO_RECONVERGE else None
        taken = kernel.label_target(inst.operands[0].name)
        sides = []
        for succ_pc in (taken, inst.index + 1):
            if succ_pc < len(kernel.body):
                sides.append(_bars_reachable(
                    ctx, block_of[succ_pc], stop))
            else:
                sides.append(set())
        if rpc == NO_RECONVERGE and (not sides[0] or not sides[1]):
            # Early-exit guard pattern (one side runs straight to exit
            # without a barrier): safe, exited lanes do not participate.
            continue
        for pc in sorted(sides[0] | sides[1]):
            if pc in flagged:
                continue
            flagged.add(pc)
            findings.append(ctx.finding(
                "C401", ERROR, kernel.body[pc],
                "bar.sync is reachable under thread-divergent control "
                f"flow (branch at pc {inst.index} diverges per-lane "
                "before reconvergence)"))
    return findings


# ----------------------------------------------------------------------
# M502 / M503 / D303: range-analysis memory lints
# ----------------------------------------------------------------------
def lint_range_memory(ctx: LintContext) -> list[Finding]:
    """Definite-error memory lints from the affine address forms.

    These fire only on *proofs* — facts that hold in every possible
    launch — so all three are safe to gate launches on:

    * M502: some thread certainly accesses below its base pointer
      (e.g. ``[%rd0 + -4]`` where ``%rd0`` came straight from a param).
    * M503: the address is misaligned for the access width no matter
      the launch (all varying contributions are multiples of the
      width, the residual constant is not).
    * D303: a ``ld.global`` whose address provably contains no pointer
      at all — a fabricated/constant address that can only ever read
      unallocated (hence uninitialised) memory.
    """
    findings: list[Finding] = []
    for pc in sorted(ctx.ranges.facts):
        fact = ctx.ranges.facts[pc]
        inst = ctx.kernel.body[pc]
        if ranges.static_oob_below(fact):
            findings.append(ctx.finding(
                "M502", ERROR, inst,
                f"{inst.opcode}.{fact.space} at address "
                f"[{fact.addr.render()}] reaches {fact.addr.const} "
                "bytes below its base for the origin thread in every "
                "launch"))
        if ranges.static_misaligned(fact):
            findings.append(ctx.finding(
                "M503", ERROR, inst,
                f"{fact.nbytes}-byte {inst.opcode}.{fact.space} at "
                f"[{fact.addr.render()}] is misaligned in every launch "
                f"(address ≡ {fact.addr.const % fact.nbytes} "
                f"mod {fact.nbytes})"))
        if (fact.space == "global" and not fact.is_write
                and not ranges.pointer_symbols(fact.addr)):
            findings.append(ctx.finding(
                "D303", WARNING, inst,
                "global load address derives from no kernel parameter "
                "or module symbol — it can only read unallocated "
                f"(uninitialised) memory [{fact.addr.render()}]"))
    return findings


# ----------------------------------------------------------------------
# M501: static shared-memory race check (range-analysis backed)
# ----------------------------------------------------------------------
def _address_signature(ctx: LintContext, inst: Instruction):
    """(base defs, offset) identity of a ld/st address, for comparing
    whether two accesses compute the same per-lane address."""
    mem = None
    for operand in inst.operands:
        if operand.kind == "mem":
            mem = operand
            break
    if mem is None:
        return None
    if not mem.is_reg_base:
        return (mem.name, mem.offset)
    defs = ctx.chains.defs_of_use.get((mem.name, inst.index), frozenset())
    return (defs, mem.offset)


def _is_variant_address(ctx: LintContext, inst: Instruction) -> bool:
    for operand in inst.operands:
        if operand.kind == "mem" and operand.is_reg_base:
            variant = ctx.variance.before.get(inst.index, frozenset())
            return operand.name in variant
    return False


def lint_shared_races(ctx: LintContext) -> list[Finding]:
    kernel = ctx.kernel
    graph = ctx.graph
    facts = ctx.ranges.facts
    findings: list[Finding] = []
    shared_sts = [i for i in kernel.body
                  if i.opcode == "st" and i.space == "shared"]
    for st in shared_sts:
        st_fact = facts.get(st.index)
        st_variant = _is_variant_address(ctx, st)
        variant_in = ctx.variance.before.get(st.index, frozenset())
        guarded = st.pred is not None and st.pred in variant_in
        if not st_variant and not guarded:
            if st_fact is not None and ranges.uniform_address(st_fact):
                # Range analysis confirms the heuristic: every thread
                # computes the *same* address, so with more than one
                # thread the overlap is certain, not suspected.
                findings.append(ctx.finding(
                    "M501", ERROR, st,
                    "every thread stores to the same shared address "
                    f"[{st_fact.addr.render()}] with no thread-variant "
                    "guard — a certain write-write race for any "
                    "multi-thread CTA"))
            else:
                findings.append(ctx.finding(
                    "M501", WARNING, st,
                    "all lanes store to the same shared address with "
                    "no thread-variant guard (write-write race)"))
            continue
        # RAW check: a ld.shared reachable from the store with no
        # intervening bar.sync.  When both sides have affine address
        # forms the range analysis decides exactly; otherwise fall
        # back to the variance heuristic — flag only when exactly one
        # side has a thread-variant address, since two variant
        # accesses are usually an owner-computes partition.
        st_sig = _address_signature(ctx, st)
        for ld in _shared_loads_before_barrier(ctx, graph, st):
            if _address_signature(ctx, ld) == st_sig:
                continue                # same per-lane address: benign
            ld_fact = facts.get(ld.index)
            if (st_fact is not None and ld_fact is not None
                    and st_fact.addr.coeffs == ld_fact.addr.coeffs):
                delta = ld_fact.addr.const - st_fact.addr.const
                stride = st_fact.addr.coeff("%tid.x")
                if delta == 0:
                    continue            # same per-lane address: benign
                if stride and ranges.thread_injective(st_fact):
                    if delta % stride:
                        # The load sits strictly between two lanes'
                        # slots: provably disjoint, suppress the old
                        # false positive.
                        continue
                    findings.append(ctx.finding(
                        "M501", ERROR, ld,
                        f"ld.shared provably reads lane tid-"
                        f"{delta // stride}'s slot written at pc "
                        f"{st.index} with no intervening bar.sync"))
                    continue
            if _is_variant_address(ctx, ld) == st_variant:
                continue
            findings.append(ctx.finding(
                "M501", WARNING, ld,
                f"ld.shared may observe the st.shared at pc {st.index} "
                "with no intervening bar.sync on some path"))
    return findings


def _shared_loads_before_barrier(ctx: LintContext, graph,
                                 st: Instruction) -> list[Instruction]:
    kernel = ctx.kernel
    block_of = graph.graph.get("block_of", {})
    loads: list[Instruction] = []
    seen: set = set()

    def scan(block, start_pc) -> None:
        if block == "exit":
            return
        end = graph.nodes[block]["end"]
        for inst in kernel.body[start_pc:end]:
            if inst.opcode == "bar":
                return                  # path synchronised, stop here
            if inst.opcode in ("ld", "ldu") and inst.space == "shared":
                loads.append(inst)
        for succ in graph.successors(block):
            if succ not in seen:
                seen.add(succ)
                scan(succ, succ if succ != "exit" else 0)

    scan(block_of.get(st.index, 0), st.index + 1)
    return loads


# ----------------------------------------------------------------------
# Pass registry
# ----------------------------------------------------------------------
LintPass = Callable[[LintContext], list[Finding]]

LINT_PASSES: dict[str, LintPass] = {
    "uninitialized-read": lint_uninitialized_reads,
    "dead-store": lint_dead_stores,
    "divergent-barrier": lint_divergent_barriers,
    "shared-race": lint_shared_races,
    "range-memory": lint_range_memory,
}


def run_lints(kernel: Kernel, *, file_id: str = "",
              passes: list[str] | None = None) -> list[Finding]:
    """Run the named lint passes (default: all) over one kernel."""
    ctx = LintContext(kernel=kernel, file_id=file_id)
    findings: list[Finding] = []
    names = list(LINT_PASSES) if passes is None else passes
    for name in names:
        findings.extend(LINT_PASSES[name](ctx))
    return findings
