"""Typed-instruction verifier: static structure/typing checks over PTX.

This is the pre-execution gate the paper's Section III-D motivates: the
GPGPU-Sim bugs catalogued there (``rem`` computing an untyped ``u64``
remainder, ``bfe`` ignoring signedness, ``brev`` missing outright) are
all *statically visible* — an instruction whose type specifier the
executor is known to ignore.  The verifier checks every instruction
against a per-opcode signature (operand count, operand kinds, dtype
family, declared register widths) and, given a
:class:`~repro.quirks.LegacyQuirks` configuration, emits a ``Q2xx``
"kernel depends on an active quirk" error for each instruction whose
semantics the active quirks corrupt.

Rule ids::

    V100  unknown opcode (functional simulator would raise at runtime)
    V101  wrong operand count
    V102  dtype family not valid for this opcode
    V103  malformed operand (wrong kind at a position, missing .cmp)
    V104  declared register narrower than the instruction type
    Q201  rem with a typed (.s*/sub-64-bit) specifier + rem_ignores_type
    Q202  signed bfe + bfe_unsigned_only
    Q203  brev + brev_unsupported
    Q204  f16 arithmetic/conversion + fp16_unsupported
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.findings import ERROR, Finding, WARNING
from repro.ptx import ast
from repro.ptx.ast import Instruction, Kernel
from repro.ptx.instructions import DISPATCH
from repro.quirks import LegacyQuirks

#: Quirk flag → the rule id that detects static dependence on it.
QUIRK_RULES = {
    "rem_ignores_type": "Q201",
    "bfe_unsigned_only": "Q202",
    "brev_unsupported": "Q203",
    "fp16_unsupported": "Q204",
}

_CONTROL = frozenset(["bra", "exit", "ret", "bar"])
_KNOWN_OPCODES = frozenset(DISPATCH) | _CONTROL

_SRC_KINDS = (ast.REG, ast.IMM)


@dataclass(frozen=True)
class _Sig:
    min_ops: int
    max_ops: int
    kinds: str | None = None      # allowed dtype kinds, None = unchecked


_SIGNATURES: dict[str, _Sig] = {
    "add": _Sig(3, 3, "usf"), "sub": _Sig(3, 3, "usf"),
    "mul": _Sig(3, 3, "usf"), "mad": _Sig(4, 4, "usf"),
    "fma": _Sig(4, 4, "f"), "div": _Sig(3, 3, "usf"),
    "rem": _Sig(3, 3, "us"), "abs": _Sig(2, 2, "sf"),
    "neg": _Sig(2, 2, "sf"), "min": _Sig(3, 3, "usf"),
    "max": _Sig(3, 3, "usf"), "sad": _Sig(4, 4, "us"),
    "and": _Sig(3, 3, "bp"), "or": _Sig(3, 3, "bp"),
    "xor": _Sig(3, 3, "bp"), "not": _Sig(2, 2, "bp"),
    "shl": _Sig(3, 3, "b"), "shr": _Sig(3, 3, "bus"),
    "brev": _Sig(2, 2, "b"), "bfe": _Sig(4, 4, "us"),
    "bfi": _Sig(5, 5, "b"), "popc": _Sig(2, 2, "b"),
    "clz": _Sig(2, 2, "b"),
    "setp": _Sig(3, 3, "usfb"), "selp": _Sig(4, 4, "usfb"),
    "slct": _Sig(4, 4, "usfb"),
    "mov": _Sig(2, 2, "usfbp"), "cvt": _Sig(2, 2, "usf"),
    "cvta": _Sig(2, 2, None),
    "ld": _Sig(2, 2, None), "ldu": _Sig(2, 2, None),
    "st": _Sig(2, 2, None), "atom": _Sig(3, 4, None),
    "red": _Sig(2, 3, None), "tex": _Sig(2, 3, None),
    "sqrt": _Sig(2, 2, "f"), "rsqrt": _Sig(2, 2, "f"),
    "rcp": _Sig(2, 2, "f"), "ex2": _Sig(2, 2, "f"),
    "lg2": _Sig(2, 2, "f"), "sin": _Sig(2, 2, "f"),
    "cos": _Sig(2, 2, "f"),
    "membar": _Sig(0, 1, None), "fence": _Sig(0, 1, None),
    "bra": _Sig(1, 1, None), "exit": _Sig(0, 0, None),
    "ret": _Sig(0, 0, None), "bar": _Sig(0, 2, None),
}

#: Opcodes whose dtype suffix is structural (``bra`` carries a default
#: ``.b32`` the parser fills in); never type-check these.
_NO_DTYPE = frozenset(["bra", "exit", "ret", "bar", "membar", "fence",
                       "cvta", "ld", "ldu", "st", "atom", "red", "tex",
                       "mov", "setp", "selp", "slct"])


def _dest_bits(inst: Instruction) -> int:
    if inst.opcode == "cvt":
        return inst.dtypes[0].bits
    if inst.opcode in ("mul", "mad") and inst.has_mod("wide"):
        return inst.dtype.bits * 2
    if inst.opcode in ("popc", "clz"):
        return 32
    return inst.dtype.bits


def _src_bits(inst: Instruction, position: int) -> int | None:
    """Required width of the REG source at *position*, or None to skip."""
    op = inst.opcode
    if op == "cvt":
        return inst.dtypes[1].bits if len(inst.dtypes) > 1 else None
    if op in ("shl", "shr") and position == 2:
        return 32                      # shift amount is always .u32
    if op in ("bfe", "bfi") and position >= 2:
        return 32                      # bit position/length are .u32
    if op == "selp" and position == 3:
        return None                    # predicate selector
    if op in ("mad", "fma") and position == 3 and inst.has_mod("wide"):
        return inst.dtype.bits * 2     # wide addend
    if inst.dtypes and inst.dtype.kind != "p":
        return inst.dtype.bits
    return None


class _KernelVerifier:
    def __init__(self, kernel: Kernel, quirks: LegacyQuirks,
                 file_id: str) -> None:
        self.kernel = kernel
        self.quirks = quirks
        self.file_id = file_id
        self.findings: list[Finding] = []

    def emit(self, rule: str, severity: str, inst: Instruction,
             message: str) -> None:
        self.findings.append(Finding(
            rule=rule, severity=severity, kernel=self.kernel.name,
            pc=inst.index, message=message, file_id=self.file_id,
            text=inst.text or str(inst)))

    # -- structural checks ---------------------------------------------
    def check(self, inst: Instruction) -> None:
        if inst.opcode not in _KNOWN_OPCODES:
            self.emit("V100", ERROR, inst,
                      f"opcode {inst.opcode!r} is not implemented by the "
                      "functional simulator")
            return
        sig = _SIGNATURES[inst.opcode]
        count = len(inst.operands)
        if not sig.min_ops <= count <= sig.max_ops:
            expect = (str(sig.min_ops) if sig.min_ops == sig.max_ops
                      else f"{sig.min_ops}..{sig.max_ops}")
            self.emit("V101", ERROR, inst,
                      f"{inst.opcode} takes {expect} operands, got {count}")
            return
        self._check_kinds(inst)
        self._check_dtype(inst, sig)
        self._check_widths(inst)
        self._check_quirks(inst)

    def _check_kinds(self, inst: Instruction) -> None:
        op, operands = inst.opcode, inst.operands
        if op == "bra":
            if operands[0].kind != ast.LABEL:
                self.emit("V103", ERROR, inst,
                          "bra target must be a label")
            return
        if op in ("exit", "ret", "membar", "fence"):
            return
        if op == "bar":
            for operand in operands:
                if operand.kind != ast.IMM:
                    self.emit("V103", ERROR, inst,
                              "bar operands must be immediates")
            return
        if op == "st":
            if operands[0].kind != ast.MEM:
                self.emit("V103", ERROR, inst,
                          "st destination must be a memory operand")
            if operands[1].kind not in (ast.REG, ast.IMM, ast.VEC):
                self.emit("V103", ERROR, inst,
                          "st source must be a register, immediate or "
                          "vector")
            return
        if op == "red":
            if operands[0].kind != ast.MEM:
                self.emit("V103", ERROR, inst,
                          "red destination must be a memory operand")
            return
        # Everything else writes a register (or vector) destination.
        if operands[0].kind not in (ast.REG, ast.VEC):
            self.emit("V103", ERROR, inst,
                      f"{op} destination must be a register")
            return
        if op in ("ld", "ldu", "atom", "tex"):
            if operands[1].kind != ast.MEM:
                self.emit("V103", ERROR, inst,
                          f"{op} source must be a memory operand")
            return
        if op in ("setp", "set") and inst.cmp is None:
            self.emit("V103", ERROR, inst,
                      f"{op} requires a comparison modifier")
        if op == "selp":
            selector = operands[3]
            if selector.kind != ast.REG:
                self.emit("V103", ERROR, inst,
                          "selp selector must be a predicate register")
        allowed = (_SRC_KINDS + (ast.SYM,) if op in ("mov", "cvta")
                   else _SRC_KINDS)
        for operand in operands[1:]:
            if operand.kind not in allowed:
                self.emit("V103", ERROR, inst,
                          f"{op} source operand of kind "
                          f"{operand.kind!r} is not allowed")

    def _check_dtype(self, inst: Instruction, sig: _Sig) -> None:
        if sig.kinds is None or inst.opcode in _NO_DTYPE:
            return
        if not inst.dtypes:
            self.emit("V102", ERROR, inst,
                      f"{inst.opcode} requires a type specifier")
            return
        for dtype in inst.dtypes:
            if dtype.kind not in sig.kinds:
                wanted = "/".join(f".{k}*" for k in sig.kinds)
                self.emit("V102", ERROR, inst,
                          f"{inst.opcode} does not accept .{dtype.name} "
                          f"(expected {wanted})")

    def _check_widths(self, inst: Instruction) -> None:
        decls = self.kernel.reg_decls
        operands = inst.operands
        if inst.opcode in ("st", "bra", "bar", "exit", "ret", "membar",
                           "fence", "red", "tex"):
            return
        if not operands or not inst.dtypes:
            return
        dst = operands[0]
        if dst.kind == ast.REG and dst.name in decls:
            need = _dest_bits(inst)
            have = decls[dst.name].bits
            if decls[dst.name].kind != "p" and have < need:
                self.emit("V104", WARNING, inst,
                          f"destination {dst.name} is declared "
                          f".{decls[dst.name].name} but the result is "
                          f"{need} bits wide")
        for position, operand in enumerate(operands[1:], start=1):
            if operand.kind != ast.REG or operand.name not in decls:
                continue
            decl = decls[operand.name]
            if decl.kind == "p":
                continue
            need = _src_bits(inst, position)
            if need is not None and decl.bits < need:
                self.emit("V104", WARNING, inst,
                          f"source {operand.name} is declared "
                          f".{decl.name} but {inst.opcode} reads "
                          f"{need} bits")

    # -- quirk dependence ----------------------------------------------
    def _check_quirks(self, inst: Instruction) -> None:
        quirks = self.quirks
        op = inst.opcode
        if (quirks.rem_ignores_type and op == "rem" and inst.dtypes
                and (inst.dtype.kind == "s" or inst.dtype.bits < 64)):
            self.emit("Q201", ERROR, inst,
                      f"rem.{inst.dtype.name} depends on the active "
                      "rem_ignores_type quirk: the legacy implementation "
                      "computes an untyped u64 remainder")
        if (quirks.bfe_unsigned_only and op == "bfe" and inst.dtypes
                and inst.dtype.kind == "s"):
            self.emit("Q202", ERROR, inst,
                      f"bfe.{inst.dtype.name} depends on the active "
                      "bfe_unsigned_only quirk: sign extension of the "
                      "extracted field is skipped")
        if quirks.brev_unsupported and op == "brev":
            self.emit("Q203", ERROR, inst,
                      "brev depends on the active brev_unsupported "
                      "quirk: the legacy simulator aborts on bit-reverse")
        if (quirks.fp16_unsupported
                and any(d.kind == "f" and d.bits == 16
                        for d in inst.dtypes)
                and op not in ("ld", "ldu", "st")):
            self.emit("Q204", ERROR, inst,
                      "f16 operation depends on the active "
                      "fp16_unsupported quirk")


def verify_kernel(kernel: Kernel, *,
                  quirks: LegacyQuirks | None = None,
                  file_id: str = "") -> list[Finding]:
    """Run the typed-instruction verifier over one kernel."""
    checker = _KernelVerifier(kernel, quirks or LegacyQuirks(), file_id)
    for inst in kernel.body:
        checker.check(inst)
    return checker.findings
