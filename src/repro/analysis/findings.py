"""Finding model shared by the verifier and the lint passes.

Rule-id namespaces:

* ``V1xx`` — typed-instruction verifier (structure/typing errors).
* ``Q2xx`` — "kernel depends on an active quirk" diagnostics, keyed to
  :class:`repro.quirks.LegacyQuirks` flags.
* ``D3xx`` — dataflow lints (uninitialised read, dead store,
  non-pointer global load).
* ``C4xx`` — control-flow lints (divergent barrier).
* ``M5xx`` — static memory lints (shared-memory race check, definite
  out-of-bounds, definite misalignment — range-analysis backed).
* ``S6xx`` — dynamic sanitizer findings (:mod:`repro.sanitize`):
  out-of-bounds access S601, uninitialised global read S602,
  shared-memory data race S603, divergent barrier S604, misaligned
  access S605.
"""

from __future__ import annotations

from dataclasses import dataclass, field

ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_ORDER = {ERROR: 0, WARNING: 1, INFO: 2}


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a pass."""

    rule: str                 # e.g. "V102", "Q201"
    severity: str             # ERROR / WARNING / INFO
    kernel: str               # kernel name
    pc: int                   # instruction index (-1: kernel-level)
    message: str
    file_id: str = ""         # PTX file id when linting a module/corpus
    text: str = ""            # source text of the offending instruction

    def key(self) -> str:
        """Stable identity for baseline comparison (message excluded so
        wording tweaks do not churn the baseline)."""
        return f"{self.file_id}::{self.kernel}::{self.rule}::{self.pc}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "kernel": self.kernel,
            "pc": self.pc,
            "message": self.message,
            "file_id": self.file_id,
            "text": self.text,
        }

    def render(self) -> str:
        where = f"{self.file_id}:" if self.file_id else ""
        site = f"pc {self.pc}" if self.pc >= 0 else "kernel"
        line = (f"{where}{self.kernel}:{site}: "
                f"{self.severity} [{self.rule}] {self.message}")
        if self.text:
            line += f"\n    {self.text}"
        return line


def sort_findings(findings: list[Finding]) -> list[Finding]:
    return sorted(findings, key=lambda f: (
        f.file_id, f.kernel, _SEVERITY_ORDER.get(f.severity, 3),
        f.rule, f.pc))


@dataclass
class LintReport:
    """Findings for one kernel (or one module's worth of kernels)."""

    findings: list[Finding] = field(default_factory=list)

    def extend(self, more: list[Finding]) -> None:
        self.findings.extend(more)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    def render(self) -> str:
        if not self.findings:
            return "clean: no findings"
        return "\n".join(f.render() for f in sort_findings(self.findings))
