"""CUDA streams and events.

cuDNN "uses multiple streams to overlap memory transfers with
computation" (paper Section III-B); the missing API the authors added was
``cudaStreamWaitEvent``.  We model each stream as a FIFO of operations
drained by the runtime; an event-wait op blocks its stream until the
event has been recorded *and executed*, so cross-stream ordering is
honoured exactly.  A wait on an event that was never recorded is a
no-op, matching real CUDA (cudaStreamWaitEvent on a fresh event does not
block).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

_ids = itertools.count(1)


@dataclass
class CudaEvent:
    """cudaEvent_t: completion marker with a virtual timestamp."""

    event_id: int = field(default_factory=lambda: next(_ids))
    recorded: bool = False      # cudaEventRecord has been issued
    completed: bool = False     # the recording stream reached the marker
    timestamp: float = 0.0      # virtual time when completed


@dataclass
class StreamOp:
    """One queued operation: a thunk plus bookkeeping for waits."""

    kind: str                               # "kernel" | "memcpy" | "record" | "wait" | "callback"
    action: Callable[[], None] | None = None
    event: CudaEvent | None = None
    label: str = ""


class CudaStream:
    """cudaStream_t: an in-order operation queue."""

    def __init__(self, stream_id: int | None = None) -> None:
        self.stream_id = stream_id if stream_id is not None else next(_ids)
        self.queue: deque[StreamOp] = deque()
        self.ops_executed = 0
        #: Fault-injection hook: called with the event of each executed
        #: record op; returning True suppresses the completion signal
        #: (the "never-signalled event" site of repro.faultinject).
        self.on_record: Callable[[CudaEvent], bool] | None = None

    def enqueue(self, op: StreamOp) -> None:
        self.queue.append(op)

    @property
    def idle(self) -> bool:
        return not self.queue

    def head_ready(self) -> bool:
        """Can the head op run now? (event waits gate on completion)"""
        if not self.queue:
            return False
        head = self.queue[0]
        if head.kind == "wait":
            assert head.event is not None
            # A wait on an event that was never recorded is a no-op —
            # real CUDA only orders against an already-issued record.
            return not head.event.recorded or head.event.completed
        return True

    def pop_and_run(self, now: float) -> StreamOp:
        op = self.queue.popleft()
        if op.kind == "record":
            assert op.event is not None
            if self.on_record is not None and self.on_record(op.event):
                pass  # injected fault: the completion signal is lost
            else:
                op.event.completed = True
                op.event.timestamp = now
        elif op.action is not None:
            op.action()
        self.ops_executed += 1
        return op
