"""CUDA runtime/driver API layer over the functional and timing models."""

from repro.cuda.fatbinary import EmbeddedPTX, FatBinary, cuobjdump
from repro.cuda.loader import LoadedProgram, ProgramLoader
from repro.cuda.runtime import (
    CudaRuntime, FunctionalBackend, KernelProfile, KernelRunResult)
from repro.cuda.streams import CudaEvent, CudaStream
from repro.cuda.textures import (
    TextureInfo, TextureReference, TextureReferenceAttr, TextureSystem)

__all__ = [
    "CudaEvent", "CudaRuntime", "CudaStream", "EmbeddedPTX", "FatBinary",
    "FunctionalBackend", "KernelProfile", "KernelRunResult",
    "LoadedProgram", "ProgramLoader", "TextureInfo", "TextureReference",
    "TextureReferenceAttr", "TextureSystem", "cuobjdump",
]
