"""Program loader: PTX extraction, parsing and symbol registration.

Implements both loader strategies from the paper's Figure 1:

* **Per-file extraction** (the fix, default): each embedded PTX image is
  parsed as its own module; duplicate kernel names across images are
  namespaced by the image they came from, with the first definition
  winning unqualified lookups.
* **Combined extraction** (:attr:`LegacyQuirks.combined_ptx_load`): all
  images are concatenated into a single translation unit first, which
  raises :class:`PTXNameError` on cuDNN-style duplicate definitions —
  the failure the paper describes.
"""

from __future__ import annotations

from repro.errors import CudaError, PTXNameError
from repro.cuda.fatbinary import EmbeddedPTX, FatBinary, cuobjdump
from repro.functional.memory import GlobalMemory, LinearMemory
from repro.ptx.ast import Kernel, PTXModule
from repro.ptx.parser import parse_module
from repro.quirks import FIXED, LegacyQuirks


class LoadedProgram:
    """All modules of one application plus its symbol tables."""

    def __init__(self) -> None:
        self.modules: list[PTXModule] = []
        self.kernels: dict[str, Kernel] = {}
        self.kernels_qualified: dict[str, Kernel] = {}
        self.module_symbols: dict[str, tuple[str, int]] = {}
        self.const_mem = LinearMemory(0)

    def find_kernel(self, name: str) -> Kernel:
        kernel = self.kernels_qualified.get(name) or self.kernels.get(name)
        if kernel is None:
            raise CudaError(
                f"kernel {name!r} not found — is its library statically "
                "linked? (the unmodified loader cannot see PTX inside "
                "dynamically linked libraries)")
        return kernel


class ProgramLoader:
    """Parses extracted PTX and materialises module-scope variables."""

    def __init__(self, global_mem: GlobalMemory,
                 quirks: LegacyQuirks = FIXED, *,
                 allow_brace_init: bool = False) -> None:
        self.global_mem = global_mem
        self.quirks = quirks
        self.allow_brace_init = allow_brace_init

    def load_binary(self, binary: FatBinary) -> LoadedProgram:
        resolve_dynamic = not self.quirks.no_dynamic_library_search
        images = cuobjdump(binary, resolve_dynamic=resolve_dynamic)
        return self.load_images(images)

    def load_images(self, images: list[EmbeddedPTX]) -> LoadedProgram:
        if self.quirks.combined_ptx_load:
            combined = "\n".join(image.text for image in images)
            images = [EmbeddedPTX(file_id="<combined>", text=combined)]
        program = LoadedProgram()
        const_blobs: list[tuple[str, bytes]] = []
        for image in images:
            module = self._parse_image(image, program)
            program.modules.append(module)
            for name, kernel in module.kernels.items():
                qualified = f"{image.file_id}::{name}"
                program.kernels_qualified[qualified] = kernel
                program.kernels.setdefault(name, kernel)
            for name, var in module.global_vars.items():
                addr = self.global_mem.allocate(var.size)
                if var.init is not None:
                    self.global_mem.write(addr, var.init)
                program.module_symbols.setdefault(name, ("global", addr))
            for name, var in module.const_vars.items():
                const_blobs.append((name, var.init or bytes(var.size)))
        offset = 0
        placements: list[tuple[str, int, bytes]] = []
        for name, blob in const_blobs:
            placements.append((name, offset, blob))
            offset += (len(blob) + 7) // 8 * 8
        program.const_mem = LinearMemory(max(offset, 16))
        for name, addr, blob in placements:
            program.const_mem.write(addr, blob)
            program.module_symbols.setdefault(name, ("const", addr))
        return program

    def _parse_image(self, image: EmbeddedPTX,
                     program: LoadedProgram) -> PTXModule:
        del program
        if self.quirks.combined_ptx_load:
            # The combined unit is one namespace, so duplicate entry or
            # variable names collide — GPGPU-Sim's historical failure.
            import re
            names = re.findall(r"\.entry\s+([A-Za-z_$][\w$]*)", image.text)
            duplicates = {n for n in names if names.count(n) > 1}
            if duplicates:
                raise PTXNameError(
                    f"duplicate definition of {sorted(duplicates)[0]!r} in "
                    "combined PTX — extract each embedded file separately")
        return _parse_cached(image.text, image.file_id,
                             self.allow_brace_init)


_PARSE_CACHE: dict[tuple[str, int, bool], PTXModule] = {}


def _parse_cached(text: str, file_id: str,
                  allow_brace_init: bool) -> PTXModule:
    """Memoise parsing — modules are immutable post-parse, and per-kernel
    analysis caches (reconvergence, fast path) are safely shared."""
    key = (file_id, hash(text), allow_brace_init)
    module = _PARSE_CACHE.get(key)
    if module is None:
        module = parse_module(text, file_id,
                              allow_brace_init=allow_brace_init)
        _PARSE_CACHE[key] = module
    return module
