"""Texture name / texref / cudaArray plumbing (paper Section III-C).

GPGPU-Sim represents textures as a chain:  a texture *name* maps to a
texture *reference* (texref), and a texref maps to a bound cudaArray plus
its textureInfo / textureReferenceAttr metadata.  MNIST broke this twice:

1. It registered **multiple texrefs under the same name**; the old
   one-to-one map lost data and "some texture instructions would fail
   because they could not find the cudaArray they were looking for".
   Fix: map each name to a *set* of texrefs, and additionally map names
   **directly** to their cudaArray/textureInfo/attrs.
2. It called ``cudaBindTextureToArray`` on an already-bound texref; the
   fix assumes an implicit unbind of the previous array first.

Both failure modes are restorable via :class:`LegacyQuirks`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CudaError
from repro.functional.memory import CudaArray
from repro.quirks import FIXED, LegacyQuirks


@dataclass
class TextureInfo:
    """cudaChannelFormatDesc-ish metadata."""

    channels: int = 1
    bits_per_channel: int = 32
    kind: str = "float"


@dataclass
class TextureReferenceAttr:
    """Addressing / filtering attributes of a texref."""

    address_mode: str = "clamp"
    filter_mode: str = "point"
    normalized: bool = False


@dataclass
class TextureReference:
    """A texref handle as produced by ``__cudaRegisterTexture``."""

    name: str
    array: CudaArray | None = None
    info: TextureInfo = field(default_factory=TextureInfo)
    attrs: TextureReferenceAttr = field(default_factory=TextureReferenceAttr)

    @property
    def bound(self) -> bool:
        return self.array is not None


class TextureSystem:
    """Owns every registered texref and the name-resolution maps."""

    def __init__(self, quirks: LegacyQuirks = FIXED) -> None:
        self.quirks = quirks
        self._refs_by_name: dict[str, list[TextureReference]] = {}
        # The paper's fix: texture instructions resolve cudaArrays
        # directly by texture *name*.
        self._array_by_name: dict[str, CudaArray] = {}

    # -- __cudaRegisterTexture ------------------------------------------
    def register_texture(self, name: str) -> TextureReference:
        ref = TextureReference(name=name)
        if self.quirks.single_texref_per_name:
            # Historical behaviour: the map holds one texref per name, so
            # re-registration silently discards the previous texref (and
            # with it, any binding reachable through the name).
            self._refs_by_name[name] = [ref]
            self._array_by_name.pop(name, None)
        else:
            self._refs_by_name.setdefault(name, []).append(ref)
        return ref

    # -- cudaBindTextureToArray -----------------------------------------
    def bind_to_array(self, ref: TextureReference, array: CudaArray,
                      info: TextureInfo | None = None,
                      attrs: TextureReferenceAttr | None = None) -> None:
        if ref.bound:
            if self.quirks.rebind_texture_errors:
                raise CudaError(
                    f"texref for {ref.name!r} is already bound; historical "
                    "GPGPU-Sim had no implicit unbind")
            self.unbind(ref)
        ref.array = array
        if info is not None:
            ref.info = info
        if attrs is not None:
            ref.attrs = attrs
        if self._is_current(ref):
            self._array_by_name[ref.name] = array

    def _is_current(self, ref: TextureReference) -> bool:
        """Is *ref* reachable through the name map (not stale)?"""
        return ref in self._refs_by_name.get(ref.name, [])

    # -- unbindTexture ----------------------------------------------------
    def unbind(self, ref: TextureReference) -> None:
        ref.array = None
        if self._array_by_name.get(ref.name) is not None:
            remaining = [r for r in self._refs_by_name.get(ref.name, [])
                         if r.bound and r is not ref]
            if remaining:
                self._array_by_name[ref.name] = remaining[-1].array
            else:
                self._array_by_name.pop(ref.name, None)

    # -- lookup used by the tex instruction ------------------------------
    def lookup(self, name: str) -> CudaArray:
        array = self._array_by_name.get(name)
        if array is None:
            raise CudaError(
                f"no cudaArray bound for texture {name!r} — a texture "
                "instruction could not find the cudaArray it was looking "
                "for (paper Section III-C)")
        return array

    def view(self) -> "TextureView":
        return TextureView(self)


class TextureView:
    """Late-binding name→cudaArray view handed to kernel launches."""

    def __init__(self, system: TextureSystem) -> None:
        self._system = system

    def get(self, name: str) -> CudaArray | None:
        try:
            return self._system.lookup(name)
        except CudaError:
            return None
