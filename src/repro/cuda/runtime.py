"""The CUDA Runtime + Driver API surface (our ``libcudart.so``).

PyTorch-style frameworks reach the simulator exactly the way the paper
describes: the framework calls runtime-API entry points, the loader has
already extracted PTX from (statically linked) library binaries, and each
library call fans out into several opaque kernel launches on streams.

Launches are *asynchronous*: they enqueue onto a stream and run when the
runtime drains (any synchronising API call).  ``cudaStreamWaitEvent`` —
the API the paper had to add — gates a stream on an event recorded in
another stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import CudaError
from repro.cuda.fatbinary import EmbeddedPTX, FatBinary
from repro.cuda.loader import LoadedProgram, ProgramLoader
from repro.cuda.streams import CudaEvent, CudaStream, StreamOp
from repro.cuda.textures import (
    TextureInfo, TextureReference, TextureReferenceAttr, TextureSystem)
from repro.functional.executor import FunctionalEngine
from repro.functional.memory import CudaArray, GlobalMemory, LinearMemory
from repro.functional.state import LaunchContext
from repro.ptx.ast import Kernel
from repro.ptx.values import write_typed
from repro.quirks import FIXED, LegacyQuirks
from repro.trace.bridge import emit_sample_counters
from repro.trace.clock import SimClock
from repro.trace.tracer import NULL_TRACER, TID_RUNTIME, stream_tid

Dim = int | tuple[int, ...]


def _dim3(value: Dim) -> tuple[int, int, int]:
    if isinstance(value, int):
        return (value, 1, 1)
    padded = tuple(value) + (1, 1, 1)
    return padded[:3]  # type: ignore[return-value]


@dataclass
class KernelRunResult:
    """What one kernel execution reported back."""

    instructions: int = 0
    cycles: int = 0
    stats: dict = field(default_factory=dict)
    samples: object | None = None  # AerialVision sample block (timing mode)


@dataclass
class KernelProfile:
    """NVProf-style per-launch record."""

    name: str
    grid: tuple[int, int, int]
    block: tuple[int, int, int]
    start: float
    end: float
    result: KernelRunResult

    @property
    def cycles(self) -> int:
        return self.result.cycles

    @property
    def instructions(self) -> int:
        return self.result.instructions


class FunctionalBackend:
    """Functional simulation mode: correctness only, no timing stats.

    ``fast_mode`` selects the interpreter tier ("megablock",
    "superblock", "fastpath" or "reference") for ablation.  The
    megablock tier executes all lanes of a launch as NumPy array
    operations and transparently falls back to the scalar tiers for
    kernels its vector codegen cannot handle, so it is safe as a
    drop-in; the default stays "superblock" for the scalar hooks'
    benefit (fault injection, per-instruction observers).
    """

    name = "functional"

    def __init__(self, *, fast_mode: str = "superblock",
                 on_exec=None, exec_override=None,
                 verify: bool = False,
                 sanitize=None) -> None:
        self.fast_mode = fast_mode
        #: Optional per-instruction hooks forwarded to FunctionalEngine
        #: (fault injection / instrumentation); either forces the
        #: engine off the superblock tier for the affected launch.
        self.on_exec = on_exec
        self.exec_override = exec_override
        #: Run the static verifier before every launch (VerificationError
        #: on error-severity findings).
        self.verify = verify
        #: Shadow-state sanitizer shared by every launch of the backend
        #: (pass True for a fresh one, or an existing Sanitizer to
        #: accumulate findings across runtimes).  The owning CudaRuntime
        #: attaches shadow memory and the poison read policy at init.
        if sanitize is True:
            from repro.sanitize.core import Sanitizer
            sanitize = Sanitizer()
        self.sanitize = sanitize or None
        #: Set by the owning CudaRuntime when tracing is on.
        self.tracer = NULL_TRACER

    def execute(self, launch: LaunchContext) -> KernelRunResult:
        tracer = self.tracer
        engine = FunctionalEngine(launch, fast_mode=self.fast_mode,
                                  on_exec=self.on_exec,
                                  exec_override=self.exec_override,
                                  verify=self.verify,
                                  sanitize=self.sanitize,
                                  tracer=tracer)
        stats = engine.run()
        if tracer.enabled:
            tracer.complete(
                f"functional:{launch.kernel.name}",
                ts=tracer.clock.now, dur=float(stats.instructions),
                cat="engine",
                args={"tier": engine.fast_mode, "verify": self.verify,
                      "instructions": stats.instructions})
        return KernelRunResult(instructions=stats.instructions, cycles=0,
                               stats={"per_opcode": stats.dynamic_per_opcode})


class CudaRuntime:
    """One simulated device context."""

    def __init__(self, *, quirks: LegacyQuirks = FIXED,
                 backend: object | None = None,
                 allow_brace_init: bool = False,
                 tracer: object | None = None,
                 clock: SimClock | None = None) -> None:
        self.quirks = quirks
        self.global_mem = GlobalMemory()
        self.loader = ProgramLoader(self.global_mem, quirks,
                                    allow_brace_init=allow_brace_init)
        self.program = LoadedProgram()
        self.textures = TextureSystem(quirks)
        self.backend = backend or FunctionalBackend()
        if getattr(self.backend, "sanitize", None) is not None:
            # Arm shadow state before any host upload: initialized-byte
            # tracking must see every memcpy from the first, and the
            # poison policy keeps stale reads from masquerading as
            # legitimate zeros (satellite of the sanitizer issue).
            from repro.sanitize.shadow import attach_shadow
            attach_shadow(self.global_mem)
            self.global_mem.uninit_read = "poison"
        self.default_stream = CudaStream(stream_id=0)
        self.streams: list[CudaStream] = [self.default_stream]
        #: Single monotonic sim-time source shared by the virtual
        #: timeline (``self.now``), the tracer's span stamps and — in
        #: timing mode — the SampleBlock interval bins, so the three can
        #: never disagree.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if clock is not None:
            self.clock = clock
            if self.tracer.enabled:
                self.tracer.clock = clock
        elif self.tracer.enabled:
            self.clock = self.tracer.clock
        else:
            self.clock = SimClock()
        if self.tracer.enabled:
            self.tracer.name_track(TID_RUNTIME, "CUDA runtime")
            self.tracer.name_track(stream_tid(0), "stream 0 (default)")
        self.profiles: list[KernelProfile] = []
        self.launch_log: list[dict] = []
        #: Checkpoint hook — when set, kernels with launch ordinal below
        #: this value have their execution skipped (resume flow, Fig. 5).
        self.skip_kernels_below: int = 0
        self._launch_ordinal = 0
        #: Debug-tool hooks, called around each kernel execution with
        #: (ordinal, name, grid, block, args).
        self.before_kernel_hooks: list = []
        self.after_kernel_hooks: list = []

    @property
    def now(self) -> float:
        """Current simulated time (cycles), read from the shared clock."""
        return self.clock.now

    @now.setter
    def now(self, value: float) -> None:
        self.clock.advance_to(value)

    # ------------------------------------------------------------------
    # Program loading
    # ------------------------------------------------------------------
    def load_binary(self, binary: FatBinary) -> None:
        self._merge_program(self.loader.load_binary(binary))

    def load_ptx(self, text: str, file_id: str = "inline") -> None:
        self._merge_program(self.loader.load_images(
            [EmbeddedPTX(file_id=file_id, text=text)]))

    def _merge_program(self, extra: LoadedProgram) -> None:
        if not self.program.modules:
            self.program = extra
            return
        self.program.modules.extend(extra.modules)
        self.program.kernels_qualified.update(extra.kernels_qualified)
        for name, kernel in extra.kernels.items():
            self.program.kernels.setdefault(name, kernel)
        for name, entry in extra.module_symbols.items():
            self.program.module_symbols.setdefault(name, entry)
        if len(extra.const_mem.data) > len(self.program.const_mem.data):
            self.program.const_mem = extra.const_mem

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def malloc(self, nbytes: int) -> int:
        return self.global_mem.allocate(nbytes)

    def free(self, addr: int) -> None:
        self.global_mem.free(addr)

    def memcpy_h2d(self, dst: int, src: bytes | np.ndarray) -> None:
        self.synchronize()
        data = self._as_bytes(src)
        if self.tracer.enabled:
            self.tracer.instant("memcpy:h2d", tid=TID_RUNTIME, cat="memory",
                                args={"nbytes": len(data)})
        self.global_mem.write(dst, data)

    def memcpy_d2h(self, src: int, nbytes: int) -> bytes:
        self.synchronize()
        if self.tracer.enabled:
            self.tracer.instant("memcpy:d2h", tid=TID_RUNTIME, cat="memory",
                                args={"nbytes": nbytes})
        return self.global_mem.read(src, nbytes)

    def memcpy_d2d(self, dst: int, src: int, nbytes: int) -> None:
        self.synchronize()
        if self.tracer.enabled:
            self.tracer.instant("memcpy:d2d", tid=TID_RUNTIME, cat="memory",
                                args={"nbytes": nbytes})
        self.global_mem.write(dst, self.global_mem.read(src, nbytes))

    def memset(self, dst: int, value: int, nbytes: int) -> None:
        self.synchronize()
        self.global_mem.write(dst, bytes([value & 0xFF]) * nbytes)

    def memcpy_h2d_async(self, dst: int, src: bytes | np.ndarray,
                         stream: CudaStream) -> None:
        data = self._as_bytes(src)
        stream.enqueue(StreamOp(
            kind="memcpy", label="h2d",
            action=lambda: self.global_mem.write(dst, data)))

    @staticmethod
    def _as_bytes(src: bytes | np.ndarray) -> bytes:
        if isinstance(src, np.ndarray):
            return src.tobytes()
        return bytes(src)

    # Typed convenience wrappers used throughout the examples/tests.
    def upload_f32(self, values: Sequence[float] | np.ndarray) -> int:
        array = np.asarray(values, dtype=np.float32)
        addr = self.malloc(array.nbytes)
        self.memcpy_h2d(addr, array)
        return addr

    def download_f32(self, addr: int, count: int) -> np.ndarray:
        raw = self.memcpy_d2h(addr, 4 * count)
        return np.frombuffer(raw, dtype=np.float32).copy()

    # ------------------------------------------------------------------
    # Streams and events
    # ------------------------------------------------------------------
    def stream_create(self) -> CudaStream:
        stream = CudaStream()
        self.streams.append(stream)
        if self.tracer.enabled:
            self.tracer.name_track(stream_tid(stream.stream_id),
                                   f"stream {stream.stream_id}")
        return stream

    def event_create(self) -> CudaEvent:
        return CudaEvent()

    def event_record(self, event: CudaEvent,
                     stream: CudaStream | None = None) -> None:
        event.recorded = True
        (stream or self.default_stream).enqueue(
            StreamOp(kind="record", event=event))

    def stream_wait_event(self, stream: CudaStream,
                          event: CudaEvent) -> None:
        """cudaStreamWaitEvent — the call the paper added to GPGPU-Sim."""
        if self.quirks.stream_wait_event_unsupported:
            raise CudaError(
                "cudaStreamWaitEvent is not implemented in stock "
                "GPGPU-Sim (added by the paper, Section III-B)")
        stream.enqueue(StreamOp(kind="wait", event=event))

    def stream_synchronize(self, stream: CudaStream) -> None:
        self._drain(only=stream)

    def event_synchronize(self, event: CudaEvent) -> None:
        self.synchronize()
        if event.recorded and not event.completed:
            raise CudaError("event recorded but never completed")

    def event_elapsed(self, start: CudaEvent, end: CudaEvent) -> float:
        return end.timestamp - start.timestamp

    def synchronize(self) -> None:
        """cudaDeviceSynchronize: drain every stream."""
        self._drain(only=None)

    def _run_op(self, stream: CudaStream) -> StreamOp:
        """Pop-and-run the stream head; non-kernel ops (event record /
        wait, async memcpy) become instants on the stream's track."""
        op = stream.pop_and_run(self.now)
        if self.tracer.enabled and op.kind != "kernel":
            name = op.kind if op.label is None else f"{op.kind}:{op.label}"
            args = None
            if op.event is not None:
                args = {"event": op.event.event_id}
            self.tracer.instant(name, tid=stream_tid(stream.stream_id),
                                cat="stream", args=args)
        return op

    def _drain(self, only: CudaStream | None) -> None:
        if only is not None:
            # cudaStreamSynchronize: drain the target stream, running
            # other streams only as far as its event waits require.
            self._drain_stream(only, frozenset())
            return
        # cudaDeviceSynchronize: drain everything.
        while not all(s.idle for s in self.streams):
            progressed = False
            for stream in self.streams:
                while stream.head_ready():
                    self._run_op(stream)
                    progressed = True
            if not progressed:
                blocked = [s.stream_id for s in self.streams if not s.idle]
                raise CudaError(
                    f"stream deadlock: streams {blocked} are waiting on "
                    "events that will never complete")

    def _drain_stream(self, stream: CudaStream,
                      visiting: frozenset[CudaStream]) -> None:
        """Fully drain *stream*; recursively satisfy its event waits."""
        if stream in visiting:
            raise CudaError(
                f"stream deadlock: stream {stream.stream_id} waits on an "
                "event whose record depends on this stream")
        visiting = visiting | {stream}
        while stream.queue:
            if stream.head_ready():
                self._run_op(stream)
                continue
            # Head is a wait on a recorded-but-incomplete event: advance
            # the producer stream just far enough to execute the record.
            event = stream.queue[0].event
            assert event is not None
            self._complete_event(event, visiting)

    def _complete_event(self, event: CudaEvent,
                        visiting: frozenset[CudaStream]) -> None:
        producer = next(
            (s for s in self.streams
             if any(op.kind == "record" and op.event is event
                    for op in s.queue)), None)
        if producer is None:
            raise CudaError(
                f"stream deadlock: event {event.event_id} was recorded "
                "but its record op will never complete")
        if producer in visiting:
            raise CudaError(
                f"stream deadlock: cyclic event dependency through "
                f"stream {producer.stream_id}")
        while not event.completed:
            if producer.head_ready():
                op = self._run_op(producer)
                if op.kind == "record" and op.event is event:
                    return  # done, even if an injected fault ate the signal
            else:
                head = producer.queue[0].event
                assert head is not None
                self._complete_event(head, visiting | {producer})

    # ------------------------------------------------------------------
    # Kernel launch (Runtime API)
    # ------------------------------------------------------------------
    def launch(self, name: str, grid: Dim, block: Dim,
               args: Sequence[object],
               stream: CudaStream | None = None) -> None:
        """cudaLaunchKernel: enqueue a kernel by name."""
        kernel = self.program.find_kernel(name)
        self._enqueue_kernel(kernel, name, grid, block, args,
                             stream or self.default_stream)

    # ------------------------------------------------------------------
    # Kernel launch (Driver API)
    # ------------------------------------------------------------------
    def cu_module_get_function(self, name: str) -> Kernel:
        return self.program.find_kernel(name)

    def cu_launch_kernel(self, func: Kernel, grid: Dim, block: Dim,
                         args: Sequence[object],
                         stream: CudaStream | None = None) -> None:
        """cuLaunchKernel — the driver-API entry the paper had to add for
        its ptxjit-based debugging tool."""
        if self.quirks.cu_launch_kernel_unsupported:
            raise CudaError(
                "cuLaunchKernel is not implemented in stock GPGPU-Sim "
                "(added by the paper, Section III-B)")
        self._enqueue_kernel(func, func.name, grid, block, args,
                             stream or self.default_stream)

    def _enqueue_kernel(self, kernel: Kernel, name: str, grid: Dim,
                        block: Dim, args: Sequence[object],
                        stream: CudaStream) -> None:
        grid3 = _dim3(grid)
        block3 = _dim3(block)
        param_mem = self._pack_args(kernel, args)
        ordinal = self._launch_ordinal
        self._launch_ordinal += 1
        self.launch_log.append({
            "ordinal": ordinal, "name": name, "grid": grid3,
            "block": block3, "args": list(args),
        })

        def run() -> None:
            if ordinal < self.skip_kernels_below:
                return  # checkpoint-resume skips already-executed kernels
            for hook in self.before_kernel_hooks:
                hook(ordinal, name, grid3, block3, args)
            launch = LaunchContext(
                kernel=kernel, grid_dim=grid3, block_dim=block3,
                global_mem=self.global_mem, param_mem=param_mem,
                const_mem=self.program.const_mem,
                module_symbols=self.program.module_symbols,
                textures=self.textures.view(),  # type: ignore[arg-type]
                quirks=self.quirks)
            tracer = self.tracer
            tid = stream_tid(stream.stream_id)
            if tracer.enabled:
                if getattr(self.backend, "tracer", NULL_TRACER) \
                        is NULL_TRACER:
                    try:
                        self.backend.tracer = tracer
                    except AttributeError:
                        pass
                tracer.begin(name, tid=tid, cat="kernel",
                             args={"grid": grid3, "block": block3,
                                   "ordinal": ordinal})
                tracer.push_default_tid(tid)
            start = self.now
            try:
                result = self.backend.execute(launch)
            finally:
                if tracer.enabled:
                    tracer.pop_default_tid()
            self.now += result.cycles or result.instructions
            if tracer.enabled:
                tracer.end(tid=tid,
                           args={"instructions": result.instructions,
                                 "cycles": result.cycles})
                if result.samples is not None:
                    tracer.attach_samples(f"{name}#{ordinal}",
                                          result.samples)
                    emit_sample_counters(tracer, result.samples, start,
                                         tid=tid)
            self.profiles.append(KernelProfile(
                name=name, grid=grid3, block=block3, start=start,
                end=self.now, result=result))
            for hook in self.after_kernel_hooks:
                hook(ordinal, name, grid3, block3, args)

        stream.enqueue(StreamOp(kind="kernel", action=run, label=name))

    def _pack_args(self, kernel: Kernel,
                   args: Sequence[object]) -> LinearMemory:
        if len(args) != len(kernel.params):
            raise CudaError(
                f"kernel {kernel.name!r} expects {len(kernel.params)} "
                f"arguments, got {len(args)}")
        param_mem = LinearMemory(max(kernel.param_bytes, 16))
        for decl, value in zip(kernel.params, args):
            if isinstance(value, (bytes, bytearray)):
                param_mem.write(decl.offset, bytes(value))
            else:
                payload = write_typed(value, decl.dtype)
                param_mem.write_uint(decl.offset, payload, decl.dtype.bytes)
        return param_mem

    # ------------------------------------------------------------------
    # Textures
    # ------------------------------------------------------------------
    def register_texture(self, name: str) -> TextureReference:
        return self.textures.register_texture(name)

    def bind_texture_to_array(self, ref: TextureReference, array: CudaArray,
                              info: TextureInfo | None = None,
                              attrs: TextureReferenceAttr | None = None
                              ) -> None:
        self.textures.bind_to_array(ref, array, info, attrs)

    def unbind_texture(self, ref: TextureReference) -> None:
        self.textures.unbind(ref)

    def malloc_array(self, width: int, height: int) -> CudaArray:
        return CudaArray(width, height)

    def memcpy_to_array(self, array: CudaArray,
                        src: bytes | np.ndarray) -> None:
        array.upload(self._as_bytes(src))

    # ------------------------------------------------------------------
    # Symbols & profiling
    # ------------------------------------------------------------------
    def get_symbol_address(self, name: str) -> int:
        entry = self.program.module_symbols.get(name)
        if entry is None or entry[0] != "global":
            raise CudaError(f"no device global named {name!r}")
        return entry[1]

    def profile_summary(self) -> dict[str, dict[str, float]]:
        """Aggregate per-kernel-name cycles/instructions (NVProf-style)."""
        summary: dict[str, dict[str, float]] = {}
        for profile in self.profiles:
            entry = summary.setdefault(
                profile.name,
                {"launches": 0, "cycles": 0, "instructions": 0})
            entry["launches"] += 1
            entry["cycles"] += profile.cycles
            entry["instructions"] += profile.instructions
        return summary
