"""Application binaries with embedded PTX, and a ``cuobjdump`` model.

The paper's Section III-A describes two loader problems with cuDNN:

1. cuDNN is *dynamically linked*, and ``cuobjdump`` does not resolve
   dynamic libraries before searching for PTX — so kernels in
   ``libcudnn.so`` are simply never found.  The authors' fix was to
   rebuild the application *statically linked* against the library.
2. cuDNN's many source files reuse kernel and variable names; after
   GPGPU-Sim concatenated all extracted PTX into one file, the duplicate
   definitions broke the program loader.  The fix was to extract and
   process each embedded PTX file separately.

:class:`FatBinary` models an ELF binary with embedded PTX images and a
list of dynamically linked libraries; :func:`cuobjdump` models NVIDIA's
extractor, including its refusal to look inside dynamic libraries.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class EmbeddedPTX:
    """One PTX image embedded in a binary (one compiled source file)."""

    file_id: str
    text: str


@dataclass
class FatBinary:
    """An executable or shared library carrying PTX images."""

    name: str
    embedded: list[EmbeddedPTX] = field(default_factory=list)
    dynamic_libs: list["FatBinary"] = field(default_factory=list)

    def add_ptx(self, file_id: str, text: str) -> None:
        self.embedded.append(EmbeddedPTX(file_id=file_id, text=text))

    def link_dynamic(self, library: "FatBinary") -> None:
        """Record a dynamic dependency (an ``ldd`` entry)."""
        self.dynamic_libs.append(library)

    def static_link(self) -> "FatBinary":
        """Produce a statically linked binary (the paper's approach).

        All PTX images from every (transitively) linked library are
        embedded directly into the new binary, so ``cuobjdump`` can find
        them without resolving dynamic dependencies.
        """
        merged = FatBinary(name=f"{self.name} (static)")
        merged.embedded.extend(self.embedded)
        seen = {image.file_id for image in self.embedded}
        for library in self._walk_libraries():
            for image in library.embedded:
                file_id = image.file_id
                if file_id in seen:
                    file_id = f"{library.name}:{file_id}"
                seen.add(file_id)
                merged.embedded.append(
                    EmbeddedPTX(file_id=file_id, text=image.text))
        return merged

    def _walk_libraries(self) -> list["FatBinary"]:
        ordered: list[FatBinary] = []
        stack = list(self.dynamic_libs)
        visited: set[int] = set()
        while stack:
            library = stack.pop(0)
            if id(library) in visited:
                continue
            visited.add(id(library))
            ordered.append(library)
            stack.extend(library.dynamic_libs)
        return ordered


def cuobjdump(binary: FatBinary, *,
              resolve_dynamic: bool = False) -> list[EmbeddedPTX]:
    """Extract embedded PTX images from a binary.

    Like NVIDIA's tool, this does **not** look inside dynamically linked
    libraries unless *resolve_dynamic* is set (the ``ldd``-based
    alternative the paper mentions but did not take).
    """
    images = list(binary.embedded)
    if resolve_dynamic:
        for library in binary._walk_libraries():
            images.extend(library.embedded)
    return images
