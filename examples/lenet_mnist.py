"""LeNet on synthetic MNIST — the paper's Section IV workload.

Trains a reduced LeNet for a few steps (every layer dispatching to the
cuDNN-clone kernels), classifies three digits the way the cuDNN MNIST
sample does, and runs the sample's self-check against an independent
NumPy evaluation.

    python examples/lenet_mnist.py
"""

import numpy as np

from repro.cuda import CudaRuntime
from repro.cudnn import ConvFwdAlgo, Cudnn, build_application_binary
from repro.nn import LeNet, LeNetConfig, SGD, synthetic_mnist


def main() -> None:
    runtime = CudaRuntime()
    runtime.load_binary(build_application_binary())
    dnn = Cudnn(runtime)

    config = LeNetConfig.reduced(
        conv1_fwd=ConvFwdAlgo.FFT_TILING,        # FFT kernels (brev!)
        conv2_fwd=ConvFwdAlgo.WINOGRAD_NONFUSED,  # Winograd pipeline
        with_lrn=True)
    model = LeNet(dnn, config)
    images, labels = synthetic_mnist(8, size=config.input_hw, seed=3)

    print("training a reduced LeNet (batch 8) ...")
    optimizer = SGD(dnn, model.parameters(), lr=0.05)
    for step in range(4):
        optimizer.zero_grad()
        loss = model.train_step(images, labels, optimizer)
        print(f"  step {step}: loss {loss:.4f}")

    print("\nclassifying three digits (the paper's workload size):")
    test_images, test_labels = synthetic_mnist(3, size=config.input_hw,
                                               seed=99)
    predictions = model.predict(test_images)
    for i, (pred, label) in enumerate(zip(predictions, test_labels)):
        print(f"  image {i}: predicted {pred}, label {label}")

    print("\nself-check (simulator vs independent NumPy forward):",
          "PASSED" if model.self_check(test_images) else "FAILED")
    summary = runtime.profile_summary()
    print(f"\n{len(runtime.launch_log)} kernel launches across "
          f"{len(dnn.api_log)} cuDNN API calls; busiest kernels:")
    top = sorted(summary.items(), key=lambda kv: -kv[1]["instructions"])
    for name, entry in top[:6]:
        print(f"  {name:28s} x{int(entry['launches']):4d}  "
              f"{int(entry['instructions']):9d} warp instructions")


if __name__ == "__main__":
    main()
