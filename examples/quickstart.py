"""Quickstart: run your own PTX and a cuDNN convolution on the simulator.

    python examples/quickstart.py
"""

import numpy as np

from repro.cuda import CudaRuntime
from repro.cudnn import (
    ConvFwdAlgo, ConvolutionDescriptor, Cudnn, FilterDescriptor,
    TensorDescriptor, build_application_binary)

SAXPY_PTX = """
.version 6.0
.target sm_60
.address_size 64

.visible .entry saxpy(
    .param .u64 x,
    .param .u64 y,
    .param .f32 alpha,
    .param .u32 n
)
{
    .reg .b32 %r<5>;
    .reg .b64 %rd<4>;
    .reg .f32 %f<4>;
    .reg .pred %p<1>;
    ld.param.u64 %rd0, [x];
    ld.param.u64 %rd1, [y];
    ld.param.f32 %f0, [alpha];
    ld.param.u32 %r0, [n];
    mov.u32 %r1, %ctaid.x;
    mov.u32 %r2, %ntid.x;
    mov.u32 %r3, %tid.x;
    mad.lo.s32 %r4, %r1, %r2, %r3;
    setp.ge.s32 %p0, %r4, %r0;
    @%p0 exit;
    mad.wide.s32 %rd2, %r4, 4, %rd0;
    mad.wide.s32 %rd3, %r4, 4, %rd1;
    ld.global.f32 %f1, [%rd2];
    ld.global.f32 %f2, [%rd3];
    fma.rn.f32 %f3, %f0, %f1, %f2;
    st.global.f32 [%rd3], %f3;
    exit;
}
"""


def main() -> None:
    runtime = CudaRuntime()

    # --- 1. Hand-written PTX through the runtime API -------------------
    runtime.load_ptx(SAXPY_PTX, "saxpy.cu")
    x = np.arange(8, dtype=np.float32)
    y = np.ones(8, dtype=np.float32)
    x_ptr, y_ptr = runtime.upload_f32(x), runtime.upload_f32(y)
    runtime.launch("saxpy", (1, 1, 1), (32, 1, 1),
                   [x_ptr, y_ptr, 2.0, 8])
    print("saxpy(2, x, 1):", runtime.download_f32(y_ptr, 8))

    # --- 2. A cuDNN convolution (opaque library PTX) --------------------
    runtime.load_binary(build_application_binary())
    dnn = Cudnn(runtime)
    rng = np.random.default_rng(0)
    image = rng.standard_normal((1, 1, 8, 8)).astype(np.float32)
    weights = rng.standard_normal((2, 1, 3, 3)).astype(np.float32)
    y_desc, y_out = dnn.convolution_forward(
        TensorDescriptor(1, 1, 8, 8), runtime.upload_f32(image.ravel()),
        FilterDescriptor(2, 1, 3, 3), runtime.upload_f32(weights.ravel()),
        ConvolutionDescriptor(pad_h=1, pad_w=1),
        ConvFwdAlgo.WINOGRAD_NONFUSED)
    result = runtime.download_f32(y_out, y_desc.size)
    print(f"\nWinograd conv output shape {y_desc.dims}, "
          f"first row: {np.round(result[:8], 3)}")
    call = dnn.api_log[-1]
    print(f"cuDNN call {call.name!r} launched {len(call.kernels)} "
          f"kernels: {call.kernels}")


if __name__ == "__main__":
    main()
