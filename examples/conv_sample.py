"""conv_sample case study — the paper's Section V, in your terminal.

Runs forward convolution with two algorithms (FFT and Winograd
Nonfused) on the cycle-level timing model and renders the AerialVision
views the paper plots: DRAM efficiency/utilization per bank, global and
per-shader IPC, and the warp-issue breakdown.

    python examples/conv_sample.py [--full]

By default uses a 4x-scaled GTX 1080 Ti model for speed; ``--full`` uses
all 28 SMs / 11 partitions.
"""

import sys

from repro.cuda import CudaRuntime
from repro.cudnn import ConvFwdAlgo
from repro.harness.conv_study import run_case
from repro.timing.config import GTX1080TI, scaled
from repro.workloads.conv_sample import ConvSampleConfig


def main() -> None:
    gpu = GTX1080TI if "--full" in sys.argv else scaled(GTX1080TI, 0.25)
    sample = ConvSampleConfig(batch=1, channels=3, height=10, width=10,
                              filters=4)
    print(f"simulating conv_sample on the {gpu.name} model "
          f"({gpu.num_sms} SMs, {gpu.num_partitions} partitions)\n")

    for algo in (ConvFwdAlgo.FFT, ConvFwdAlgo.WINOGRAD_NONFUSED):
        print(f"=== forward convolution, algorithm: {algo.value} ===")
        result = run_case("fwd", algo, gpu=gpu, sample=sample)
        report = result.report
        print(report.render_text(max_cols=72))
        print(f"kernels: "
              f"{[profile.name for profile in result.profiles]}")
        print(f"total cycles {result.total_cycles}, "
              f"mean IPC {result.mean_ipc:.1f}, "
              f"bank camping index "
              f"{report.interval_camping_index():.2f}, "
              f"shader balance {report.shader_load_balance():.2f}\n")


if __name__ == "__main__":
    main()
