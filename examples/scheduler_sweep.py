"""Scheduler policy sweep: 200 mixed jobs, 4 simulated GPUs, 4 policies.

Submits the same deterministic mix of saxpy / conv / lenet jobs (varied
sizes, priorities and tenants, distinct seeds so nothing memoizes or
coalesces) to a fresh :class:`~repro.service.scheduler.ClusterScheduler`
under each allocation policy, and reports **makespan** (first submit to
last finish) and **mean wait** (submit to GPU assignment) per policy —
the numbers an operator reads before picking ``repro-serve --policy``.

The committed artifact is ``results/scheduler_sweep.json``::

    PYTHONPATH=src python examples/scheduler_sweep.py \
        --out results/scheduler_sweep.json

Numbers are host-dependent wall clock; the *ordering* (sjf minimises
mean wait on a mixed batch, fifo suffers head-of-line blocking) is the
reproducible claim, asserted by the relative stats in the artifact.
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import time

from repro.service.scheduler import POLICIES, ClusterScheduler

#: Deterministic mix seed — the job list is identical across runs and
#: across policies within a run.
MIX_SEED = 20260809


def build_mix(jobs: int) -> list[dict]:
    """The deterministic submission list: ~60% saxpy, 30% conv, 10% lenet.

    Sizes vary so runtimes genuinely differ (that is what separates
    sjf from fifo); every job gets a distinct seed so no two share a
    memo key, plus a priority tier and a tenant for the priority/fair
    policies to act on.
    """
    rng = random.Random(MIX_SEED)
    mix = []
    for index in range(jobs):
        roll = rng.random()
        if roll < 0.6:
            spec = {"workload": "saxpy",
                    "config": {"n": rng.choice([64, 256, 1024, 4096])}}
        elif roll < 0.9:
            spec = {"workload": "conv",
                    "config": {"batch": 1, "channels": 1,
                               "height": rng.choice([8, 12]),
                               "width": rng.choice([8, 12]),
                               "filters": rng.choice([2, 4]),
                               "algos": ["IMPLICIT_GEMM"]}}
        else:
            spec = {"workload": "lenet",
                    "config": {"images": rng.choice([1, 2])}}
        spec["seed"] = index  # unique -> no memo hits, no coalescing
        spec["priority"] = rng.choice([0, 5, 10])
        spec["tenant"] = rng.choice(["team-a", "team-b", "team-c"])
        mix.append(spec)
    return mix


def warm_caches(mix: list[dict]) -> None:
    """Run one job per distinct structural shape so the disk kernel
    cache is warm before the first timed policy (otherwise policy #1
    pays every plan compile and the comparison is unfair)."""
    seen: set[str] = set()
    with ClusterScheduler(gpus=4, memo_path=None) as sched:
        for spec in mix:
            shape = json.dumps({"w": spec["workload"],
                                "c": spec["config"]}, sort_keys=True)
            if shape in seen:
                continue
            seen.add(shape)
            sched.result(
                sched.submit(spec["workload"], spec["config"],
                             seed=spec["seed"]).job_id, timeout=600)


def run_policy(policy: str, mix: list[dict], gpus: int) -> dict:
    """Submit the whole mix under *policy* and measure the batch."""
    with ClusterScheduler(gpus=gpus, policy=policy,
                          memo_path=None) as sched:
        t0 = time.perf_counter()
        handles = [sched.submit(spec["workload"], spec["config"],
                                seed=spec["seed"],
                                priority=spec["priority"],
                                tenant=spec["tenant"])
                   for spec in mix]
        for job in handles:
            sched.result(job.job_id, timeout=600)
        makespan = time.perf_counter() - t0
        waits = [job.assigned_at - job.submitted_at for job in handles]
        turnarounds = [job.finished_at - job.submitted_at
                       for job in handles]
        high_waits = [job.assigned_at - job.submitted_at
                      for job in handles if job.priority == 10]
        stats = sched.stats()
    return {
        "makespan_s": round(makespan, 3),
        "mean_wait_s": round(statistics.fmean(waits), 4),
        "p95_wait_s": round(
            sorted(waits)[int(0.95 * (len(waits) - 1))], 4),
        "mean_wait_high_priority_s": round(
            statistics.fmean(high_waits), 4),
        "mean_turnaround_s": round(statistics.fmean(turnarounds), 4),
        "executed": stats["executed"],
        "memo_hits": stats["memo_hits"],
    }


def main(argv: list[str] | None = None) -> int:
    """Run the sweep and print (and optionally write) the report."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=200)
    parser.add_argument("--gpus", type=int, default=4)
    parser.add_argument("--policies", nargs="*",
                        default=sorted(POLICIES))
    parser.add_argument("--out", help="write the JSON artifact here")
    args = parser.parse_args(argv)

    mix = build_mix(args.jobs)
    counts: dict[str, int] = {}
    for spec in mix:
        counts[spec["workload"]] = counts.get(spec["workload"], 0) + 1
    print(f"mix: {counts} on {args.gpus} simulated GPUs")
    print("warming kernel cache...", flush=True)
    warm_caches(mix)

    report = {
        "jobs": args.jobs,
        "gpus": args.gpus,
        "mix": counts,
        "mix_seed": MIX_SEED,
        "policies": {},
        "note": ("wall-clock numbers are host-dependent; the relative "
                 "ordering (sjf minimises mean wait, priority "
                 "minimises high-priority wait) is the reproducible "
                 "claim"),
    }
    for policy in args.policies:
        print(f"policy {policy}: running {args.jobs} jobs...", flush=True)
        report["policies"][policy] = run_policy(policy, mix, args.gpus)
        row = report["policies"][policy]
        print(f"  makespan {row['makespan_s']}s  "
              f"mean wait {row['mean_wait_s']}s  "
              f"high-pri wait {row['mean_wait_high_priority_s']}s")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
