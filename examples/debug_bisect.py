"""Re-enact the paper's Section III-D debugging hunt.

We re-inject GPGPU-Sim's historical ``rem`` bug, run a small cuDNN
program, and let the differential debugger find:

  1. the first incorrect cuDNN API call,
  2. the first incorrectly executing kernel inside it,
  3. the first incorrectly executing instruction (via the lockstep
     golden executor) — a ``rem.u32`` inside ``fft2d_r2c``, just as the
     paper reports finding "rem.u32 %r149, %r2, %r121" inside
     ``fft2d_r2c_32x32``.

    python examples/debug_bisect.py
"""

import numpy as np

from repro.cuda import CudaRuntime
from repro.cudnn import (
    ActivationDescriptor, ConvFwdAlgo, ConvolutionDescriptor,
    FilterDescriptor, TensorDescriptor, build_application_binary)
from repro.debugtool import DifferentialDebugger, GoldenExecutor
from repro.functional.memory import LinearMemory
from repro.functional.state import LaunchContext
from repro.quirks import LegacyQuirks

RNG = np.random.default_rng(5)
IMAGE = RNG.standard_normal((1, 1, 6, 6)).astype(np.float32)
WEIGHTS = RNG.standard_normal((2, 1, 3, 3)).astype(np.float32)


def workload(dnn):
    rt = dnn.rt
    x = rt.upload_f32(IMAGE.ravel())
    w = rt.upload_f32(WEIGHTS.ravel())
    scratch = rt.malloc(IMAGE.nbytes)
    dnn.activation_forward(ActivationDescriptor("relu"), x, scratch,
                           IMAGE.size)
    dnn.convolution_forward(TensorDescriptor(*IMAGE.shape), x,
                            FilterDescriptor(*WEIGHTS.shape), w,
                            ConvolutionDescriptor(pad_h=1, pad_w=1),
                            ConvFwdAlgo.FFT_TILING)


def main() -> None:
    suspect = LegacyQuirks(rem_ignores_type=True)
    print("suspect simulator quirks:", suspect.describe(), "\n")

    print("running three-level differential bisection ...")
    debugger = DifferentialDebugger(workload, suspect_quirks=suspect)
    report = debugger.run()
    print(report.render())

    print("\nlockstep golden execution of the flagged kernel ...")
    binary = build_application_binary()
    rt = CudaRuntime()
    rt.load_binary(binary)
    src = rt.upload_f32(RNG.standard_normal(36).astype(np.float32))
    dst = rt.malloc(8 * 256)
    kernel = rt.program.find_kernel("fft2d_r2c_16x16")
    params = LinearMemory(max(kernel.param_bytes, 16))
    for decl, value in zip(kernel.params,
                           [src, dst, 1, 1, 6, 6, 0, 0, 0, 0]):
        params.write_uint(decl.offset, value, decl.dtype.bytes)
    launch = LaunchContext(kernel=kernel, grid_dim=(1, 1, 1),
                           block_dim=(16, 1, 1),
                           global_mem=rt.global_mem, param_mem=params)
    diff = GoldenExecutor(launch, suspect_quirks=suspect).find_divergence()
    print(f"first incorrectly executing instruction "
          f"(pc {diff.pc}, lane {diff.lane}):")
    print(f"    {diff.text.strip()}")
    print(f"    suspect wrote   {diff.suspect_payload:#x}")
    print(f"    reference wrote {diff.reference_payload:#x}")


if __name__ == "__main__":
    main()
