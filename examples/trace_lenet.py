"""Trace a LeNet training step + inference end to end (repro.trace).

Runs the reduced LeNet workload with a live :class:`repro.trace.Tracer`
attached to the runtime, then:

* writes ``results/lenet_trace.json`` — Chrome-trace JSON loadable in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``;
* validates the emitted events against the schema contract;
* renders the NVProf-style kernel table twice — once from the live
  runtime and once reconstructed *from the trace file* — and checks
  they agree (the trace is the single source of truth).

    python examples/trace_lenet.py [output.json]
"""

import sys
from pathlib import Path

from repro.cuda import CudaRuntime
from repro.cudnn import Cudnn, build_application_binary
from repro.harness.profiler import NVProfLike
from repro.nn import LeNet, LeNetConfig, SGD, synthetic_mnist
from repro.trace import Tracer, validate_chrome_events, write_chrome_trace
from repro.trace.export import chrome_trace_events


def build_trace(tracer: Tracer) -> CudaRuntime:
    """Run the workload under *tracer* and return the runtime."""
    runtime = CudaRuntime(tracer=tracer)
    runtime.load_binary(build_application_binary())
    dnn = Cudnn(runtime)

    config = LeNetConfig.reduced(with_lrn=True)
    model = LeNet(dnn, config)
    images, labels = synthetic_mnist(4, size=config.input_hw, seed=3)

    optimizer = SGD(dnn, model.parameters(), lr=0.05)
    for _step in range(2):
        optimizer.zero_grad()
        model.train_step(images, labels, optimizer)

    test_images, _ = synthetic_mnist(2, size=config.input_hw, seed=99)
    model.predict(test_images)
    runtime.synchronize()
    return runtime


def main() -> int:
    out = Path(sys.argv[1] if len(sys.argv) > 1
               else "results/lenet_trace.json")
    tracer = Tracer(process_name="lenet-mnist")
    runtime = build_trace(tracer)

    events = chrome_trace_events(tracer)
    problems = validate_chrome_events(events)
    if problems:
        for problem in problems:
            print(f"INVALID {problem}", file=sys.stderr)
        return 1
    write_chrome_trace(out, tracer)
    kernels = sum(1 for e in events
                  if e.get("ph") == "B" and e.get("cat") == "kernel")
    api_calls = sum(1 for e in events
                    if e.get("ph") == "X" and e.get("cat") == "api")
    print(f"wrote {out}: {len(events)} events, {kernels} kernel slices, "
          f"{api_calls} cuDNN API slices (open in https://ui.perfetto.dev)")

    live = NVProfLike(runtime).render(top=8)
    replayed = NVProfLike.from_trace(out).render(top=8)
    print("\nNVProf-style table reconstructed from the trace file:")
    print(replayed)
    if live != replayed:
        print("MISMATCH: trace-derived table differs from the live "
              "runtime's", file=sys.stderr)
        return 1
    print("\ntrace-derived table matches the live runtime: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
