"""The TensorFlow story (paper Section III-E), completed.

The paper got PyTorch working but TensorFlow's PTX "uses syntax that is
not supported by GPGPU-Sim to initialize arrays using curly braces".
This demo first reproduces that failure, then runs a small TF-style
static graph end to end with the brace-initialiser extension enabled.

    python examples/tf_graph.py
"""

import numpy as np

from repro.cuda import CudaRuntime
from repro.errors import PTXSyntaxError
from repro.graph import Graph, Session, build_pywrap_library


def main() -> None:
    print("1. stock loader vs _pywrap_tensorflow_internal.so:")
    stock = CudaRuntime()
    try:
        stock.load_binary(build_pywrap_library())
        print("   unexpectedly loaded?!")
    except PTXSyntaxError as error:
        print(f"   PTXSyntaxError: {error}")
        print("   (the paper's dead end — left as future work)")

    print("\n2. with allow_brace_init=True (future work, done):")
    session = Session()
    print(f"   loaded {len(session.rt.program.kernels)} kernels, "
          "including tf_scale_and_shift")

    print("\n3. run a small static graph:")
    rng = np.random.default_rng(1)
    graph = Graph()
    images = graph.placeholder((2, 1, 8, 8), name="images")
    conv_w = graph.constant(
        rng.standard_normal((4, 1, 3, 3)).astype(np.float32) * 0.4)
    dense_w = graph.constant(
        rng.standard_normal((4 * 4 * 4, 10)).astype(np.float32) * 0.2)
    logits = graph.dense(
        graph.flatten(graph.max_pool(graph.relu(
            graph.conv2d(images, conv_w, padding=1)))),
        dense_w)
    probs = graph.softmax(graph.scale_and_shift(logits))

    feed = {images: rng.standard_normal((2, 1, 8, 8)
                                        ).astype(np.float32)}
    output = session.run(probs, feed)
    print(f"   probabilities shape {output.shape}, "
          f"rows sum to {output.sum(axis=1).round(5)}")
    names = {entry["name"] for entry in session.rt.launch_log}
    print(f"   kernels used: {sorted(names)}")


if __name__ == "__main__":
    main()
