"""Checkpoint in functional mode, resume in performance mode.

The paper's Section III-F flow (Figures 4 and 5): run the application's
first kernels functionally, stop inside kernel x after CTA M has run y
instructions per warp, save Data1/Data2, and resume from that exact
point in the (7-8x slower) performance simulation mode.

    python examples/checkpoint_resume.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.checkpoint import Checkpoint, CheckpointingBackend, ResumeBackend
from repro.cuda import CudaRuntime
from repro.cudnn import ConvFwdAlgo
from repro.nn.lenet import LeNetConfig
from repro.timing import TINY, TimingBackend
from repro.workloads.mnist_sample import MnistSample, MnistSampleConfig

SAMPLE = MnistSampleConfig(
    images=1,
    lenet=LeNetConfig.reduced(conv1_fwd=ConvFwdAlgo.IMPLICIT_GEMM,
                              conv1_channels=3, conv2_channels=4,
                              fc_hidden=24))


def run(backend=None):
    runtime = (CudaRuntime(backend=backend) if backend is not None
               else CudaRuntime())
    sample = MnistSample(runtime, SAMPLE)
    return sample.run(self_check=False)


def main() -> None:
    print("1. ground truth: full functional run")
    truth = run()
    print(f"   logits: {np.round(truth.logits[0], 3)}")

    print("\n2. checkpoint flow: stop inside kernel #3, CTA 0, after "
          "24 instructions per warp")
    checkpointer = CheckpointingBackend(kernel_ordinal=3, first_cta=0,
                                        partial_ctas=1,
                                        warp_instruction_budget=24)
    run(checkpointer)
    checkpoint = checkpointer.checkpoint
    path = Path(tempfile.mkdtemp()) / "mnist.ckpt"
    checkpoint.save(path)
    print(f"   checkpoint taken in kernel {checkpoint.kernel_name!r}")
    print(f"   Data1: {len(checkpoint.cta_snapshots)} partial CTA(s), "
          f"{sum(len(s.warps) for s in checkpoint.cta_snapshots)} warps")
    print(f"   Data2: {len(checkpoint.global_memory['pages'])} global "
          f"memory pages")
    print(f"   saved to {path}")

    print("\n3. resume flow: reload and continue in performance mode")
    restored = Checkpoint.load(path)
    timing = TimingBackend(TINY)
    resumed = run(ResumeBackend(restored, timing))
    print(f"   logits: {np.round(resumed.logits[0], 3)}")
    cycles = sum(stats.cycles for stats in timing.kernel_stats)
    print(f"   {len(timing.kernel_stats)} kernels timed on resume, "
          f"{cycles} simulated cycles")
    match = np.allclose(resumed.logits, truth.logits, atol=1e-4)
    print(f"\nresumed run matches the full run: "
          f"{'YES' if match else 'NO'}")


if __name__ == "__main__":
    main()
